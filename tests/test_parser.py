"""Unit tests for the SQL parser."""

import pytest

from repro.sqlast import parse, parse_many
from repro.sqlast import nodes as N
from repro.sqlast.errors import ParseError


class TestSelectStructure:
    def test_minimal_query(self):
        ast = parse("select a from t")
        assert ast.label == N.SELECT
        assert [c.label for c in ast.children] == [N.PROJECT, N.FROM]

    def test_clause_canonical_order(self):
        ast = parse(
            "select top 5 a from t where x < 1 group by a order by a limit 3"
        )
        assert [c.label for c in ast.children] == [
            N.TOP,
            N.PROJECT,
            N.FROM,
            N.WHERE,
            N.GROUPBY,
            N.ORDERBY,
            N.LIMIT,
        ]

    def test_top_value(self):
        assert parse("select top 10 a from t").children[0].value == 10

    def test_limit_value(self):
        ast = parse("select a from t limit 7")
        assert ast.child_by_label(N.LIMIT).value == 7

    def test_star_projection(self):
        ast = parse("select * from t")
        assert ast.child_by_label(N.PROJECT).children[0].label == N.STAR

    def test_multiple_projection_items(self):
        proj = parse("select a, b, c from t").child_by_label(N.PROJECT)
        assert [c.value for c in proj.children] == ["a", "b", "c"]

    def test_aggregate_function(self):
        proj = parse("select count(*) from t").child_by_label(N.PROJECT)
        func = proj.children[0]
        assert func.label == N.FUNC
        assert func.value == "count"
        assert func.children[0].label == N.STAR

    def test_function_name_lowercased(self):
        proj = parse("select AVG(u) from t").child_by_label(N.PROJECT)
        assert proj.children[0].value == "avg"

    def test_alias(self):
        proj = parse("select count(*) as n from t").child_by_label(N.PROJECT)
        assert proj.children[0].label == N.ALIAS
        assert proj.children[0].value == "n"

    def test_qualified_column(self):
        proj = parse("select t.a from t").child_by_label(N.PROJECT)
        assert proj.children[0].value == "t.a"

    def test_multiple_tables(self):
        from_ = parse("select a from t, s").child_by_label(N.FROM)
        assert [c.value for c in from_.children] == ["t", "s"]

    def test_distinct_is_normalized_away(self):
        assert parse("select distinct a from t") == parse("select a from t")


class TestPredicates:
    def test_comparison(self):
        where = parse("select a from t where x < 5").child_by_label(N.WHERE)
        pred = where.children[0]
        assert pred.label == N.BIEXPR
        assert pred.value == "<"
        assert pred.children[0].value == "x"
        assert pred.children[1].value == 5

    def test_string_comparison(self):
        pred = parse("select a from t where c = 'USA'").child_by_label(
            N.WHERE
        ).children[0]
        assert pred.children[1].label == N.STREXPR
        assert pred.children[1].value == "USA"

    def test_not_equal_normalized(self):
        pred = parse("select a from t where x != 1").child_by_label(N.WHERE).children[0]
        assert pred.value == "<>"

    def test_between(self):
        pred = parse(
            "select a from t where u between 0 and 30"
        ).child_by_label(N.WHERE).children[0]
        assert pred.label == N.BETWEEN
        assert [c.value for c in pred.children] == ["u", 0, 30]

    def test_in_list(self):
        pred = parse(
            "select a from t where c in ('x', 'y')"
        ).child_by_label(N.WHERE).children[0]
        assert pred.label == N.INLIST
        assert len(pred.children) == 3

    def test_and_chain_is_flat(self):
        pred = parse(
            "select a from t where x < 1 and y < 2 and z < 3"
        ).child_by_label(N.WHERE).children[0]
        assert pred.label == N.AND
        assert len(pred.children) == 3

    def test_or_of_ands_precedence(self):
        pred = parse(
            "select a from t where x < 1 and y < 2 or z < 3"
        ).child_by_label(N.WHERE).children[0]
        assert pred.label == N.OR
        assert pred.children[0].label == N.AND

    def test_parenthesized_or_under_and(self):
        pred = parse(
            "select a from t where (x < 1 or y < 2) and z < 3"
        ).child_by_label(N.WHERE).children[0]
        assert pred.label == N.AND
        assert pred.children[0].label == N.OR

    def test_not(self):
        pred = parse("select a from t where not x = 1").child_by_label(
            N.WHERE
        ).children[0]
        assert pred.label == N.NOT

    def test_single_predicate_has_no_and_wrapper(self):
        pred = parse("select a from t where x = 1").child_by_label(N.WHERE).children[0]
        assert pred.label == N.BIEXPR


class TestOrderGroup:
    def test_group_by(self):
        group = parse("select a, count(*) from t group by a").child_by_label(N.GROUPBY)
        assert [c.value for c in group.children] == ["a"]

    def test_order_by_default_asc(self):
        order = parse("select a from t order by a").child_by_label(N.ORDERBY)
        assert order.children[0].value == "asc"

    def test_order_by_desc(self):
        order = parse("select a from t order by a desc").child_by_label(N.ORDERBY)
        assert order.children[0].value == "desc"

    def test_order_by_multiple(self):
        order = parse("select a from t order by a desc, b").child_by_label(N.ORDERBY)
        assert len(order.children) == 2


class TestErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "select from t",
            "select a",
            "select a from",
            "select a from t where",
            "select a from t where x",
            "select top a from t",
            "select a from t where x between 1",
            "select a from t extra",
            "from t select a",
            "select a from t where x in ()",
        ],
    )
    def test_malformed_queries_raise(self, sql):
        with pytest.raises(ParseError):
            parse(sql)

    def test_fractional_top_raises(self):
        with pytest.raises(ParseError):
            parse("select top 1.5 a from t")

    def test_error_message_has_context(self):
        with pytest.raises(ParseError) as err:
            parse("select a frm t")
        assert "frm" in str(err.value)


class TestParseMany:
    def test_preserves_order(self):
        asts = parse_many(["select a from t", "select b from t"])
        assert asts[0].child_by_label(N.PROJECT).children[0].value == "a"
        assert asts[1].child_by_label(N.PROJECT).children[0].value == "b"

    def test_empty_list(self):
        assert parse_many([]) == []
