"""Printer tests, including the parse∘print round-trip property."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.sqlast import parse, to_sql
from repro.sqlast import nodes as N


class TestPrinter:
    @pytest.mark.parametrize(
        "sql,expected",
        [
            ("select a from t", "SELECT a FROM t"),
            ("select top 10 a from t", "SELECT TOP 10 a FROM t"),
            ("select a, b from t", "SELECT a, b FROM t"),
            ("select count(*) from t", "SELECT count(*) FROM t"),
            (
                "select a from t where x < 5",
                "SELECT a FROM t WHERE x < 5",
            ),
            (
                "select a from t where c = 'USA'",
                "SELECT a FROM t WHERE c = 'USA'",
            ),
            (
                "select a from t where u between 0 and 30",
                "SELECT a FROM t WHERE u BETWEEN 0 AND 30",
            ),
            (
                "select a from t group by a order by a desc limit 3",
                "SELECT a FROM t GROUP BY a ORDER BY a DESC LIMIT 3",
            ),
        ],
    )
    def test_known_renderings(self, sql, expected):
        assert to_sql(parse(sql)) == expected

    def test_string_escaping(self):
        ast = parse("select a from t where c = 'it''s'")
        rendered = to_sql(ast)
        assert "''" in rendered
        assert parse(rendered) == ast

    def test_or_precedence_parenthesized(self):
        sql = "select a from t where (x < 1 or y < 2) and z < 3"
        ast = parse(sql)
        assert parse(to_sql(ast)) == ast

    def test_in_list_rendering(self):
        sql = "select a from t where c in ('x', 'y')"
        assert "IN ('x', 'y')" in to_sql(parse(sql))


# -- property-based round-trip ---------------------------------------------------

_ident = st.sampled_from(["a", "b", "objid", "u", "g", "ra", "x1"])
_table = st.sampled_from(["t", "stars", "galaxies"])
_number = st.integers(min_value=0, max_value=1000)
_string = st.sampled_from(["USA", "EUR", "it's"])


def _atom():
    col = _ident.map(lambda c: f"{c} < 5")
    eq = st.tuples(_ident, _string).map(lambda p: f"{p[0]} = '{p[1]}'".replace("'it's'", "'it''s'"))
    between = st.tuples(_ident, _number, _number).map(
        lambda p: f"{p[0]} between {min(p[1], p[2])} and {max(p[1], p[2])}"
    )
    return st.one_of(col, eq, between)


_predicate = st.lists(_atom(), min_size=1, max_size=4).map(" and ".join)

_projection = st.one_of(
    st.just("*"),
    st.lists(_ident, min_size=1, max_size=3, unique=True).map(", ".join),
    st.just("count(*)"),
    _ident.map(lambda c: f"avg({c})"),
)


@st.composite
def _query(draw):
    parts = ["select"]
    if draw(st.booleans()):
        parts.append(f"top {draw(st.integers(min_value=1, max_value=999))}")
    parts.append(draw(_projection))
    parts.append(f"from {draw(_table)}")
    if draw(st.booleans()):
        parts.append(f"where {draw(_predicate)}")
    if draw(st.booleans()):
        parts.append(f"limit {draw(st.integers(min_value=1, max_value=99))}")
    return " ".join(parts)


class TestRoundTrip:
    @given(_query())
    @settings(max_examples=200, deadline=None)
    def test_parse_print_parse_fixpoint(self, sql):
        ast = parse(sql)
        rendered = to_sql(ast)
        assert parse(rendered) == ast

    @given(_query())
    @settings(max_examples=100, deadline=None)
    def test_print_is_deterministic(self, sql):
        ast = parse(sql)
        assert to_sql(ast) == to_sql(ast)

    @given(_query())
    @settings(max_examples=100, deadline=None)
    def test_ast_equality_is_structural(self, sql):
        assert parse(sql) == parse(sql)
        assert hash(parse(sql)) == hash(parse(sql))
