"""Public-API smoke: modules import, and ``__all__`` matches reality.

Doubles as the CI ``api-smoke`` gate: every name a module advertises in
``__all__`` must actually resolve, and the primary entry points must be
re-exported at the package root.
"""

import importlib

import pytest

PUBLIC_MODULES = (
    "repro",
    "repro.core",
    "repro.engine",
    "repro.serve",
    "repro.registry",
    "repro.workloads",
    "repro.search",
    "repro.cost",
    "repro.rules",
    "repro.difftree",
    "repro.obs",
)


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_imports_and_all_is_consistent(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    assert exported is not None, f"{module_name} must declare __all__"
    assert len(exported) == len(set(exported)), f"duplicate names in {module_name}.__all__"
    missing = [name for name in exported if not hasattr(module, name)]
    assert not missing, f"{module_name}.__all__ advertises missing names: {missing}"


def test_root_reexports_engine_surface():
    import repro

    for name in ("Engine", "LogSession", "GenerationReport"):
        assert name in repro.__all__
        assert getattr(repro, name) is not None


def test_engine_reexports_registries():
    import repro.engine as engine

    for name in ("register_strategy", "register_workload", "strategy_names", "workload_names"):
        assert name in engine.__all__


def test_legacy_entry_points_still_importable():
    from repro import (  # noqa: F401
        GenerationConfig,
        IncrementalGenerator,
        generate_interface,
        generate_interfaces_batch,
    )
    from repro.core import prepare_search, run_search  # noqa: F401
    from repro.serve import DEFAULT_SESSION, InterfaceCache  # noqa: F401
