"""Tests for the mining baseline, workloads, and the public API."""

import pytest

from repro import GenerationConfig, Screen, generate_interface
from repro.cost import CostModel
from repro.difftree import as_asts, expresses_all
from repro.mining import evaluate_mined, mine_interface
from repro.sqlast import parse, to_sql
from repro.workloads import (
    LISTING1_SQL,
    clause_toggle_log,
    listing1_queries,
    listing1_sql,
    mixed_session_log,
    predicate_add_log,
    projection_cycle_log,
    value_drift_log,
)

FIG1 = (
    "SELECT sales FROM sales WHERE cty = 'USA'",
    "SELECT costs FROM sales WHERE cty = 'EUR'",
    "SELECT costs FROM sales",
)


class TestMining:
    def test_fig1_mined_widgets(self):
        result = mine_interface(as_asts(FIG1))
        controlled = [
            n for n in result.widget_tree.walk() if n.choice_path is not None
        ]
        assert controlled  # at least the projection + where groups

    def test_expressible_fraction_reported(self):
        result = mine_interface(as_asts(FIG1))
        assert 0.0 < result.expressible_fraction <= 1.0

    def test_correlated_changes_can_be_lost(self):
        # Swapping (a,1)<->(b,2) pairwise: the bottom-up miner groups the
        # column and the literal independently; it still expresses the
        # inputs (cross products include them) — the point is it
        # OVER-generalizes rather than structures. Expressibility must
        # nevertheless be reported honestly.
        log = [
            "select x from t where a = 1",
            "select x from t where a = 2",
        ]
        result = mine_interface(as_asts(log))
        assert result.expressible_fraction == 1.0

    def test_sdss_log_mined(self):
        result = mine_interface(listing1_queries())
        assert result.expressible_fraction > 0.0
        assert result.widget_tree.widget_count() >= 3

    def test_evaluate_mined_populates_cost(self):
        queries = as_asts(FIG1)
        model = CostModel(queries, Screen.wide())
        result = evaluate_mined(model, mine_interface(queries))
        assert result.evaluation is not None
        assert result.evaluation.breakdown.m_cost > 0

    def test_single_query_log(self):
        result = mine_interface(as_asts(["select a from t"]))
        assert result.expressible_fraction == 1.0

    def test_empty_log_raises(self):
        with pytest.raises(ValueError):
            mine_interface([])


class TestWorkloads:
    def test_listing1_has_ten_queries(self):
        assert len(LISTING1_SQL) == 10
        assert len(listing1_queries()) == 10

    def test_listing1_first_two_match_paper(self):
        assert listing1_sql(1, 1)[0] == (
            "select top 10 objid from stars where u between 0 and 30 "
            "and g between 0 and 30 and r between 0 and 30 and i between 0 and 30"
        )
        assert "top 100 objid from galaxies" in listing1_sql(2, 2)[0]

    def test_queries_6_8_share_where(self):
        queries = listing1_queries(6, 8)
        wheres = {to_sql(q).split("WHERE")[1] for q in queries}
        assert len(wheres) == 1

    def test_queries_6_8_differ_only_in_top_and_table(self):
        queries = listing1_queries(6, 8)
        tops = [q.child_by_label("Top").value for q in queries]
        assert tops == [10, 100, 1000]

    def test_all_queries_share_where_structure(self):
        for query in listing1_queries():
            where = query.child_by_label("Where")
            assert where is not None
            conjuncts = where.children[0].children
            assert [c.label for c in conjuncts] == ["Between"] * 4

    def test_invalid_range_raises(self):
        with pytest.raises(ValueError):
            listing1_sql(0, 3)
        with pytest.raises(ValueError):
            listing1_sql(5, 11)

    @pytest.mark.parametrize(
        "generator",
        [
            value_drift_log,
            clause_toggle_log,
            predicate_add_log,
            projection_cycle_log,
            mixed_session_log,
        ],
    )
    def test_generators_deterministic(self, generator):
        assert generator(seed=9) == generator(seed=9)

    def test_value_drift_monotone_literal(self):
        queries = value_drift_log(num_queries=5, seed=1)
        values = [q.child_by_label("Where").children[0].children[1].value for q in queries]
        assert values == sorted(values)

    def test_predicate_add_log_grows(self):
        queries = predicate_add_log(num_queries=4, seed=0)
        def conjunct_count(q):
            pred = q.child_by_label("Where").children[0]
            return len(pred.children) if pred.label == "And" else 1
        counts = [conjunct_count(q) for q in queries]
        assert max(counts) > min(counts)


class TestPublicAPI:
    def test_generate_interface_mcts(self):
        result = generate_interface(
            FIG1, config=GenerationConfig(time_budget_s=1.0, seed=1)
        )
        assert result.cost < float("inf")
        assert expresses_all(result.difftree, result.queries)
        assert result.ascii_art.strip()
        assert "<html" in result.html()

    @pytest.mark.parametrize("strategy", ["random", "greedy", "beam", "exhaustive"])
    def test_all_strategies_run(self, strategy):
        result = generate_interface(
            FIG1,
            config=GenerationConfig(strategy=strategy, time_budget_s=0.5, seed=0),
        )
        assert result.best.breakdown.feasible

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError):
            generate_interface(
                FIG1, config=GenerationConfig(strategy="quantum", time_budget_s=0.1)
            )

    def test_rule_exclusion_via_config(self):
        result = generate_interface(
            FIG1,
            config=GenerationConfig(
                time_budget_s=0.5, exclude_rules=("Distribute", "UnOptional")
            ),
        )
        assert result.best.breakdown.feasible

    def test_session_from_generated_interface(self):
        from repro.database import Database, Table

        db = Database(
            [Table("sales", {"cty": ["USA"], "sales": [1], "costs": [2]})]
        )
        result = generate_interface(
            FIG1, config=GenerationConfig(time_budget_s=0.5, seed=2)
        )
        session = result.session(db)
        assert session.current_sql == to_sql(parse(FIG1[0]))
        session.run()

    def test_accepts_parsed_asts(self):
        result = generate_interface(
            [parse(q) for q in FIG1],
            config=GenerationConfig(time_budget_s=0.3, seed=0),
        )
        assert result.queries == [parse(q) for q in FIG1]

    def test_narrow_screen_interface_fits(self):
        result = generate_interface(
            FIG1,
            screen=Screen.narrow(),
            config=GenerationConfig(time_budget_s=1.0, seed=1),
        )
        assert result.best.breakdown.width <= Screen.narrow().width
        assert result.best.breakdown.height <= Screen.narrow().height
