"""Differential parity tests: compiled kernel vs reference evaluation.

The kernel's contract (see ``repro/cost/kernel.py``) is *exact* parity:
for any widget tree it adopts — including states reached through long
chains of single-decision deltas — every ``CostBreakdown`` field must
equal the walk-everything reference implementation bit for bit.  These
tests enforce that on randomized difftree / widget-tree / workload
triples drawn from the SDSS, TPC-H-style, and synthetic generators.
"""

import random

import pytest

from repro.cost import (
    BoundedLRU,
    CompiledSequence,
    CostModel,
    coordinate_descent,
    exhaustive_evaluation,
    sampled_evaluation,
    worst_sampled_evaluation,
)
from repro.difftree import CompiledChanges, changed_choices, initial_difftree
from repro.layout import Screen
from repro.rules import default_engine
from repro.sqlast import parse
from repro.widgets import (
    GreedyChooser,
    RandomChooser,
    WidgetNode,
    derive_widget_tree,
    enumerate_widget_trees,
    enumerate_widget_trees_with_deltas,
)
from repro.workloads import (
    listing1_sql,
    mixed_session_log,
    sdss_session_sql,
    tpch_session_sql,
)


def random_states(sql_log, seed, steps=6, count=3):
    """Difftrees reached by random rewrite walks from the initial state."""
    asts = [parse(q) if isinstance(q, str) else q for q in sql_log]
    engine = default_engine()
    rng = random.Random(seed)
    states = [initial_difftree(asts)]
    for _ in range(count - 1):
        state = states[0]
        for _ in range(steps):
            move = engine.random_move(state, rng)
            if move is None:
                break
            state = engine.apply(state, move)
        states.append(state)
    return asts, states


WORKLOADS = {
    "sdss-listing1": listing1_sql(1, 5),
    "sdss-session": sdss_session_sql(8, seed=3),
    "tpch-session": tpch_session_sql(8, seed=5),
    "synthetic-mixed": mixed_session_log(8, seed=7),
}


def assert_identical(kernel_bd, reference_bd, context=""):
    assert kernel_bd == reference_bd, (
        f"kernel/reference divergence {context}:\n"
        f"  kernel:    {kernel_bd}\n"
        f"  reference: {reference_bd}"
    )


class TestFullEvaluationParity:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_randomized_triples(self, workload):
        """model.evaluate == evaluate_reference on random widget trees."""
        asts, states = random_states(WORKLOADS[workload], seed=11)
        model = CostModel(asts, Screen.wide())
        rng = random.Random(13)
        for state in states:
            for trial in range(8):
                chooser = GreedyChooser() if trial == 0 else RandomChooser(rng)
                root = derive_widget_tree(state, chooser)
                assert_identical(
                    model.evaluate(state, root),
                    model.evaluate_reference(state, root),
                    context=f"{workload} trial {trial}",
                )
        # Every derived tree must go through the kernel, not the fallback.
        assert model.kernel_stats.fallback_evals == 0
        assert model.kernel_stats.adopted_evals > 0

    def test_narrow_screen_infeasible_parity(self):
        """Overflow fields and the infeasible rank agree too."""
        asts, states = random_states(WORKLOADS["sdss-session"], seed=17)
        model = CostModel(asts, Screen(120, 90))
        rng = random.Random(19)
        for state in states:
            root = derive_widget_tree(state, RandomChooser(rng))
            kernel_bd = model.evaluate(state, root)
            reference_bd = model.evaluate_reference(state, root)
            assert_identical(kernel_bd, reference_bd)
            assert not kernel_bd.feasible
            assert kernel_bd.rank == reference_bd.rank

    def test_hand_built_tree_falls_back(self):
        """Foreign widget trees bypass the kernel but still evaluate."""
        asts, states = random_states(WORKLOADS["sdss-listing1"], seed=23)
        model = CostModel(asts, Screen.wide())
        foreign = WidgetNode(widget="label", title="not derived")
        breakdown = model.evaluate(states[0], foreign)
        assert_identical(breakdown, model.evaluate_reference(states[0], foreign))
        assert model.kernel_stats.fallback_evals == 1


class TestDeltaReevaluationParity:
    """reevaluate(delta) must equal full evaluation — the core invariant."""

    @pytest.mark.parametrize("workload", ["sdss-session", "tpch-session"])
    def test_enumeration_delta_chain(self, workload):
        """Every candidate of a delta-patched enumeration matches the
        reference evaluation of the corresponding real widget tree."""
        asts, states = random_states(WORKLOADS[workload], seed=29)
        model = CostModel(asts, Screen.wide())
        state = states[1]
        kernel = model.kernel_for(state)
        cap = 300
        reference = [
            model.evaluate_reference(state, root)
            for root in enumerate_widget_trees(state, cap=cap)
        ]
        compiled = [bd for _, bd in kernel.iter_enumeration(cap=cap)]
        assert len(reference) == len(compiled)
        assert len(compiled) > 1
        for i, (kernel_bd, reference_bd) in enumerate(zip(compiled, reference)):
            assert_identical(kernel_bd, reference_bd, context=f"candidate {i}")
        # The chain really ran on deltas, not repeated full loads.
        assert model.kernel_stats.delta_evals >= len(compiled) - 1

    def test_random_delta_chain(self):
        """Random walks through decision space: patch vs from-scratch."""
        asts, states = random_states(WORKLOADS["tpch-session"], seed=31)
        model = CostModel(asts, Screen.wide())
        state = states[1]
        kernel = model.kernel_for(state)
        schema = kernel.schema
        if not schema.decisions:
            pytest.skip("state has no free decisions")
        rng = random.Random(37)
        vector = schema.greedy_vector()
        kernel.set_vector(vector)
        for step in range(60):
            index = rng.randrange(len(schema.decisions))
            options = [
                value
                for value in schema.options_for(index)
                if value != vector[index]
            ]
            if not options:
                continue
            value = rng.choice(options)
            vector[index] = value
            kernel.apply_delta(index, value)
            patched = kernel.breakdown()
            reference_bd = model.evaluate_reference(
                state, kernel.materialize(vector)
            )
            assert_identical(patched, reference_bd, context=f"step {step}")

    def test_tree_enumerator_deltas_line_up(self):
        """enumerate_widget_trees_with_deltas deltas describe the change."""
        asts, states = random_states(WORKLOADS["sdss-listing1"], seed=41)
        state = states[1]
        previous = None
        for root, deltas in enumerate_widget_trees_with_deltas(state, cap=50):
            if previous is None:
                assert deltas is None
            else:
                assert deltas  # consecutive candidates differ
            previous = root


class TestOptimizerEquivalence:
    """Kernel-backed optimizers return what the legacy loops returned."""

    def legacy_sampled(self, model, tree, k, rng, include_greedy=True):
        samples = []
        if include_greedy:
            samples.append(derive_widget_tree(tree, GreedyChooser()))
            k = max(0, k - 1)
        for _ in range(k):
            samples.append(derive_widget_tree(tree, RandomChooser(rng)))
        best = None
        for root in samples:
            breakdown = model.evaluate_reference(tree, root)
            if best is None or breakdown.rank < best[1].rank:
                best = (root, breakdown)
        return best

    def test_sampled_evaluation_matches_legacy(self):
        asts, states = random_states(WORKLOADS["sdss-session"], seed=43)
        model = CostModel(asts, Screen.wide())
        for state in states:
            kernel_result = sampled_evaluation(
                model, state, k=6, rng=random.Random(5)
            )
            legacy_root, legacy_bd = self.legacy_sampled(
                model, state, k=6, rng=random.Random(5)
            )
            assert kernel_result.breakdown == legacy_bd
            assert kernel_result.widget_tree == legacy_root

    def test_exhaustive_matches_legacy_enumeration(self):
        asts, states = random_states(WORKLOADS["tpch-session"], seed=47)
        model = CostModel(asts, Screen.wide())
        # Pick the state with the smallest full decision product so the
        # exhaustive path (not the coordinate-descent fallback) runs.
        state = min(
            states, key=lambda s: model.kernel_for(s).schema.num_assignments
        )
        cap = model.kernel_for(state).schema.num_assignments
        assert cap <= 5000, "workload produced no enumerable state"
        result = exhaustive_evaluation(model, state, cap=cap)
        best = None
        for root in enumerate_widget_trees(state, cap=cap):
            breakdown = model.evaluate_reference(state, root)
            if best is None or breakdown.rank < best[1].rank:
                best = (root, breakdown)
        assert result.breakdown == best[1]
        assert result.widget_tree == best[0]

    def test_coordinate_descent_and_worst_sampled_are_consistent(self):
        asts, states = random_states(WORKLOADS["sdss-session"], seed=53)
        model = CostModel(asts, Screen.wide())
        state = states[1]
        descended = coordinate_descent(model, state)
        assert_identical(
            descended.breakdown,
            model.evaluate_reference(state, descended.widget_tree),
        )
        worst = worst_sampled_evaluation(model, state, k=8, rng=random.Random(9))
        assert_identical(
            worst.breakdown,
            model.evaluate_reference(state, worst.widget_tree),
        )


class TestCompiledSequence:
    def test_extension_equals_fresh_compile(self):
        """extend() over appended queries == compiling the full log."""
        sql = tpch_session_sql(10, seed=61)
        asts = [parse(q) for q in sql]
        tree = initial_difftree(asts)  # expresses every query in the log
        fresh = CompiledSequence.compile(tree, asts)
        extended = CompiledSequence.compile(tree, asts[:6]).extend(tree, asts[6:])
        assert fresh.ok and extended.ok
        assert list(fresh.queries) == list(extended.queries)
        assert fresh.assignments == extended.assignments
        assert fresh.changes.pair_paths == extended.changes.pair_paths
        assert fresh.changes.pair_ids == extended.changes.pair_ids
        assert fresh.changes.paths == extended.changes.paths

    def test_interning_preserves_sorted_path_order(self):
        sql = sdss_session_sql(6, seed=67)
        asts = [parse(q) for q in sql]
        tree = initial_difftree(asts)
        sequence = CompiledSequence.compile(tree, asts)
        changes = sequence.changes
        assert list(changes.paths) == sorted(changes.paths)
        for pair_ids, pair_paths in zip(changes.pair_ids, changes.pair_paths):
            assert list(pair_ids) == sorted(pair_ids)
            assert [changes.paths[i] for i in pair_ids] == list(pair_paths)

    def test_pair_sets_match_changed_choices(self):
        sql = listing1_sql(1, 5)
        asts = [parse(q) for q in sql]
        tree = initial_difftree(asts)
        sequence = CompiledSequence.compile(tree, asts)
        for pair_paths, (a, b) in zip(
            sequence.changes.pair_paths,
            zip(sequence.assignments, sequence.assignments[1:]),
        ):
            assert list(pair_paths) == changed_choices(a, b)

    def test_model_extends_carried_sequences(self):
        """adopt_sequences lets a grown model diff only the new pairs."""
        sql = sdss_session_sql(9, seed=71)
        asts = [parse(q) for q in sql]
        # A tree expressing the *full* log (the serve layer's extended
        # best state): the old model saw only the first six queries.
        tree = initial_difftree(asts)
        old_model = CostModel(asts[:6], Screen.wide())
        carried = {tree.canonical_key: old_model.compiled_sequence(tree)}

        new_model = CostModel(asts, Screen.wide())
        new_model.adopt_sequences(carried)
        kernel = new_model.kernel_for(tree)
        assert new_model.kernel_stats.sequences_extended == 1
        assert kernel.sequence.ok
        fresh_model = CostModel(asts, Screen.wide())
        fresh = fresh_model.kernel_for(tree).sequence
        assert kernel.sequence.assignments == fresh.assignments
        assert kernel.sequence.changes.pair_ids == fresh.changes.pair_ids


class TestBoundedLRU:
    def test_evicts_oldest_one_at_a_time(self):
        lru = BoundedLRU(3)
        for key in "abc":
            lru[key] = key
        lru["d"] = "d"
        assert "a" not in lru and len(lru) == 3
        assert lru.evictions == 1

    def test_get_refreshes_recency(self):
        lru = BoundedLRU(2)
        lru["a"] = 1
        lru["b"] = 2
        assert lru.get("a") == 1  # refresh: now b is oldest
        lru["c"] = 3
        assert "b" not in lru and "a" in lru

    def test_state_evaluator_cache_is_bounded(self):
        from repro.search.common import StateEvaluator

        asts = [parse(q) for q in listing1_sql(1, 3)]
        model = CostModel(asts, Screen.wide())
        evaluator = StateEvaluator(model)
        evaluator._cache.capacity = 2  # shrink for the test
        _, states = random_states(listing1_sql(1, 3), seed=73, count=3)
        seen = set()
        for state in states:
            evaluator.evaluate(state)
            seen.add(state.canonical_key)
        assert len(evaluator._cache) <= 2
        # The incumbent is still tracked even if its entry was evicted.
        assert evaluator.best is not None


class TestDeltaValidation:
    """apply_delta rejects malformed patches with actionable errors."""

    def _kernel(self):
        asts, states = random_states(WORKLOADS["sdss-session"], seed=41)
        model = CostModel(asts, Screen.wide())
        kernel = model.kernel_for(states[-1])
        kernel.set_vector(kernel.schema.greedy_vector())
        return kernel

    def test_index_out_of_range_names_decision_count(self):
        kernel = self._kernel()
        count = len(kernel.schema.decisions)
        for bad in (-1, count, count + 7):
            with pytest.raises(ValueError, match=f"schema has {count} decisions"):
                kernel.apply_delta(bad, "horizontal")

    def test_widget_decision_rejects_non_pair_values(self):
        kernel = self._kernel()
        indices = kernel.schema.widget_indices
        if not indices:
            pytest.skip("state has no widget decisions")
        with pytest.raises(ValueError, match="name, size_class"):
            kernel.apply_delta(indices[0], "dropdown")  # not a pair

    def test_orientation_decision_rejects_unknown_names(self):
        kernel = self._kernel()
        indices = kernel.schema.orientation_indices
        if not indices:
            pytest.skip("state has no orientation decisions")
        with pytest.raises(ValueError, match="orientation decision"):
            kernel.apply_delta(indices[0], "diagonal")

    def test_failed_validation_leaves_state_untouched(self):
        kernel = self._kernel()
        before = kernel.breakdown()
        count = len(kernel.schema.decisions)
        with pytest.raises(ValueError):
            kernel.apply_delta(count, "horizontal")
        assert_identical(kernel.breakdown(), before, "after rejected delta")


class TestBufferReuse:
    """set_vector reuses preallocated node buffers instead of reallocating."""

    def test_buffers_keep_identity_across_set_vector(self):
        asts, states = random_states(WORKLOADS["tpch-session"], seed=43)
        model = CostModel(asts, Screen.wide())
        kernel = model.kernel_for(states[-1])
        buffers = (kernel._name, kernel._size, kernel._box_w, kernel._box_h)
        rng = random.Random(7)
        for _ in range(5):
            kernel.set_vector(kernel.schema.random_vector(rng))
            assert kernel._name is buffers[0]
            assert kernel._size is buffers[1]
            assert kernel._box_w is buffers[2]
            assert kernel._box_h is buffers[3]

    def test_delta_equals_full_invariant(self):
        """A delta chain == set_vector of the final vector, field for field."""
        asts, states = random_states(WORKLOADS["synthetic-mixed"], seed=47)
        model = CostModel(asts, Screen.wide())
        # kernel_for is LRU-cached per model, so the reference kernel must
        # come from a *separate* model to be an independent object.
        reference_model = CostModel(asts, Screen.wide())
        for state in states:
            kernel = model.kernel_for(state)
            schema = kernel.schema
            if not schema.decisions:
                continue
            rng = random.Random(53)
            vector = schema.greedy_vector()
            kernel.set_vector(vector)
            for _ in range(20):
                index = rng.randrange(len(schema.decisions))
                options = [
                    o for o in schema.options_for(index) if o != vector[index]
                ]
                if not options:
                    continue
                vector[index] = options[rng.randrange(len(options))]
                kernel.apply_delta(index, vector[index])
                delta_bd = kernel.breakdown()
                fresh = reference_model.kernel_for(state)
                fresh.set_vector(vector)
                assert_identical(
                    delta_bd, fresh.breakdown(), "delta vs full set_vector"
                )
