"""Property-based tests: the expressibility invariant.

Every rule application must keep every input query expressible — MCTS
relies on it to roam the space freely.  We generate random query logs,
apply random move sequences, and check the invariant plus normalization
properties at every step.
"""

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.difftree import expresses_all, initial_difftree, is_normalized
from repro.rules import default_engine
from repro.sqlast import parse

_COLUMNS = ["u", "g", "r", "i"]
_TABLES = ["stars", "galaxies"]
_ITEMS = ["objid", "count(*)", "ra"]


@st.composite
def query_sql(draw):
    parts = ["select"]
    if draw(st.booleans()):
        parts.append(f"top {draw(st.sampled_from([10, 100, 1000]))}")
    parts.append(draw(st.sampled_from(_ITEMS)))
    parts.append(f"from {draw(st.sampled_from(_TABLES))}")
    num_preds = draw(st.integers(min_value=0, max_value=3))
    if num_preds:
        conjuncts = []
        for _ in range(num_preds):
            column = draw(st.sampled_from(_COLUMNS))
            lo = draw(st.integers(min_value=0, max_value=10))
            hi = lo + draw(st.integers(min_value=1, max_value=20))
            conjuncts.append(f"{column} between {lo} and {hi}")
        parts.append("where " + " and ".join(conjuncts))
    return " ".join(parts)


@st.composite
def query_log(draw):
    size = draw(st.integers(min_value=1, max_value=5))
    return [draw(query_sql()) for _ in range(size)]


class TestExpressibilityInvariant:
    @given(query_log(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_random_walks_never_lose_a_query(self, sqls, seed):
        queries = [parse(s) for s in sqls]
        engine = default_engine()
        tree = initial_difftree(queries)
        rng = random.Random(seed)
        for _ in range(12):
            move = engine.random_move(tree, rng)
            if move is None:
                break
            tree = engine.apply(tree, move)
            assert expresses_all(tree, queries), (
                f"lost a query after {move}:\n{sqls}"
            )

    @given(query_log(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_applied_states_stay_normalized(self, sqls, seed):
        queries = [parse(s) for s in sqls]
        engine = default_engine()
        tree = initial_difftree(queries)
        rng = random.Random(seed)
        for _ in range(8):
            move = engine.random_move(tree, rng)
            if move is None:
                break
            tree = engine.apply(tree, move)
            assert is_normalized(tree)

    @given(query_log())
    @settings(max_examples=40, deadline=None)
    def test_every_enumerated_move_preserves_expressibility(self, sqls):
        queries = [parse(s) for s in sqls]
        engine = default_engine()
        tree = initial_difftree(queries)
        for move in engine.moves(tree):
            successor = engine.apply(tree, move)
            assert expresses_all(successor, queries), f"move {move} lost a query"

    @given(query_log(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_assignments_exist_and_instantiate_back(self, sqls, seed):
        from repro.difftree import assignment_for
        from repro.interface import instantiate

        queries = [parse(s) for s in sqls]
        engine = default_engine()
        tree = initial_difftree(queries)
        rng = random.Random(seed)
        for _ in range(6):
            move = engine.random_move(tree, rng)
            if move is None:
                break
            tree = engine.apply(tree, move)
        for query in queries:
            assignment = assignment_for(tree, query)
            assert assignment is not None
            assert instantiate(tree, assignment) == query
