"""Canonical-key stability: the cache/transposition-table contract.

``DTNode.canonical_key`` must identify a state regardless of the order
in which it was built or reached — the interface cache keys logs by it
and the MCTS transposition table dedups states by it.
"""

import pickle
import random

import pytest

from repro.difftree import extend_difftree, initial_difftree, wrap_ast
from repro.rules import default_engine
from repro.sqlast import parse

LOG = (
    "select top 10 objid from stars where u between 0 and 30",
    "select top 100 objid from galaxies where u between 5 and 25",
    "select count(*) from quasars where g between 2 and 28",
)


def structurally_equal(a, b):
    """Field-by-field structural comparison, independent of canonical
    keys (``DTNode.__eq__`` compares keys, which would make key-equality
    assertions circular)."""
    return (
        a.kind == b.kind
        and a.label == b.label
        and a.value == b.value
        and len(a.children) == len(b.children)
        and all(structurally_equal(x, y) for x, y in zip(a.children, b.children))
    )


class TestLogKeyStability:
    def test_same_log_same_key(self):
        a = initial_difftree([parse(q) for q in LOG])
        b = initial_difftree([parse(q) for q in LOG])
        assert structurally_equal(a, b)
        assert a.canonical_key == b.canonical_key

    def test_reordered_log_same_key(self):
        """Normalization sorts ANY alternatives, so the initial state —
        and hence the cache key — is order-insensitive."""
        forward = initial_difftree([parse(q) for q in LOG])
        backward = initial_difftree([parse(q) for q in reversed(LOG)])
        assert structurally_equal(forward, backward)
        assert forward.canonical_key == backward.canonical_key

    def test_duplicated_log_same_key(self):
        once = initial_difftree([parse(q) for q in LOG])
        twice = initial_difftree([parse(q) for q in LOG + LOG])
        assert once.canonical_key == twice.canonical_key

    def test_different_log_different_key(self):
        a = initial_difftree([parse(q) for q in LOG[:2]])
        b = initial_difftree([parse(q) for q in LOG])
        assert a.canonical_key != b.canonical_key


class TestRewriteOrderStability:
    def test_commuting_rewrites_share_key(self):
        """Apply two independent moves in both orders; when the final
        states coincide structurally, their keys must too."""
        engine = default_engine()
        tree = initial_difftree([parse(q) for q in LOG])
        # The raw initial state has a single applicable move; walk a few
        # deterministic steps into the space where fanout is rich.
        rng = random.Random(0)
        for _ in range(3):
            move = engine.random_move(tree, rng)
            if move is None:
                break
            tree = engine.apply(tree, move)
        moves = engine.moves(tree)
        assert len(moves) >= 2
        found = 0
        for i in range(min(len(moves), 12)):
            for j in range(i + 1, min(len(moves), 12)):
                try:
                    ab = engine.apply(engine.apply(tree, moves[i]), moves[j])
                    ba = engine.apply(engine.apply(tree, moves[j]), moves[i])
                except Exception:
                    continue  # second move invalidated by the first
                if structurally_equal(ab, ba):
                    found += 1
                    assert ab.canonical_key == ba.canonical_key
        assert found > 0, "expected at least one commuting move pair"

    def test_random_walk_revisits_share_key(self):
        """States revisited along a random walk hash to the same key."""
        tree = initial_difftree([parse(q) for q in LOG])
        engine = default_engine()
        rng = random.Random(7)
        seen = {}
        current = tree
        for _ in range(60):
            move = engine.random_move(current, rng)
            if move is None:
                break
            current = engine.apply(current, move)
            key = current.canonical_key
            if key in seen:
                assert structurally_equal(seen[key], current)
            seen[key] = current
        assert len(seen) > 1

    def test_incremental_duplicate_append_is_stable(self):
        """Appending already-expressed queries must not move the key."""
        tree = initial_difftree([parse(q) for q in LOG])
        extended = extend_difftree(tree, [LOG[0], LOG[2]])
        assert extended.canonical_key == tree.canonical_key


class TestPickleStability:
    def test_difftree_roundtrip_preserves_key(self):
        tree = initial_difftree([parse(q) for q in LOG])
        clone = pickle.loads(pickle.dumps(tree))
        assert structurally_equal(clone, tree)
        assert clone.canonical_key == tree.canonical_key

    def test_ast_roundtrip(self):
        ast = parse(LOG[0])
        clone = pickle.loads(pickle.dumps(ast))
        assert clone == ast
        assert wrap_ast(clone).canonical_key == wrap_ast(ast).canonical_key
