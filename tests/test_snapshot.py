"""Durable session snapshots: capture/restore parity + the stores.

The restore contract under test (see ``repro/serve/snapshot.py``):
restored state is observationally indistinguishable from never-crashed
state — an ``interface()`` on the unchanged log replays the cached
winner bit-identically, and a subsequent append + search continues from
the same warm state with identical results.  The store layer's
generation counter must reject stale writes from slow or zombie
writers, including across concurrent threads on one SQLite file.
"""

import json
import multiprocessing
import os
import tempfile
import threading

import pytest

from repro import Engine, GenerationConfig
from repro.serve import (
    SNAPSHOT_SCHEMA_VERSION,
    MemorySnapshotStore,
    SessionSnapshot,
    SnapshotError,
    SnapshotWriter,
    SQLiteSnapshotStore,
    StaleSnapshotError,
    open_store,
)

TINY = GenerationConfig(time_budget_s=0.0, max_iterations=2, seed=0, final_cap=50)

#: One growing log per workload family the snapshot must round-trip.
WORKLOADS = ("sdss", "tpch", "synthetic.mixed_session")


def grown_session(engine, workload, session_id="snap", n=4, split=2):
    """Serve a session in two growing steps; returns (handle, last report)."""
    log = Engine.workload(workload, n, seed=5)
    handle = engine.session(session_id)
    handle.append(*log[:split])
    handle.interface()
    handle.append(*log[split:])
    return handle, handle.interface()


class TestRoundTrip:
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_restore_serves_bit_identical_interface(self, workload):
        engine = Engine(config=TINY)
        _, original = grown_session(engine, workload)
        payload = json.loads(
            json.dumps(engine.snapshot_session("snap").to_payload())
        )

        other = Engine(config=TINY)
        handle = other.restore_snapshot(payload)
        restored = handle.interface()
        assert restored.source == "cache"  # zero new search work
        assert restored.cost == original.cost
        assert (
            restored.difftree.canonical_key == original.difftree.canonical_key
        )
        assert repr(restored.widget_tree) == repr(original.widget_tree)
        assert restored.search.stats == original.search.stats
        assert restored.search.history == original.search.history

    def test_restore_continues_search_identically(self):
        # The warm state (best + elites + sequences) must carry: growing
        # the restored session gives the uninterrupted session's result.
        log = Engine.workload("sdss", 6, seed=5)
        engine = Engine(config=TINY)
        session = engine.session("snap")
        session.append(*log[:2])
        session.interface()
        session.append(*log[2:4])
        session.interface()
        payload = engine.snapshot_session("snap").to_payload()

        other = Engine(config=TINY)
        restored = other.restore_snapshot(payload)
        # No intermediate interface() call: a cache-hit serve clears the
        # elite carry in original and restored sessions alike, so the
        # parity comparison appends straight away (the cluster's replay
        # path does exactly this).
        restored.append(*log[4:])
        session.append(*log[4:])
        theirs = restored.interface()
        ours = session.interface()
        assert theirs.cost == ours.cost
        assert theirs.difftree.canonical_key == ours.difftree.canonical_key
        assert theirs.search.stats == ours.search.stats

    def test_carried_tree_rides_through_snapshot(self):
        # PR 9: the carried MCTS tree is an additive optional `carry`
        # field — the restored session's next searched serve rebases the
        # snapshotted tree instead of starting from an empty table.
        engine = Engine(config=TINY)
        grown_session(engine, "sdss")
        payload = json.loads(
            json.dumps(engine.snapshot_session("snap").to_payload())
        )
        assert payload["carry"] is not None
        assert payload["carry"]["nodes"]
        assert payload["carry"]["log_len"] == 4

        other = Engine(config=TINY)
        handle = other.restore_snapshot(payload)
        handle.append(*Engine.workload("sdss", 6, seed=5)[4:])
        report = handle.interface()
        assert report.source == "search"
        carry = report.to_dict()["provenance"]["carry"]
        assert carry is not None
        assert carry["nodes_harvested"] == len(payload["carry"]["nodes"])
        assert carry["nodes_carried"] >= 1  # the root always survives

    def test_payload_without_carry_restores(self):
        # Pre-PR-9 payloads have no `carry` key; restore must not care.
        engine = Engine(config=TINY)
        _, original = grown_session(engine, "sdss")
        payload = engine.snapshot_session("snap").to_payload()
        del payload["carry"]
        handle = Engine(config=TINY).restore_snapshot(payload)
        restored = handle.interface()
        assert restored.source == "cache"
        assert restored.cost == original.cost

    def test_restore_provenance_lands_in_reports(self):
        engine = Engine(config=TINY)
        grown_session(engine, "sdss")
        payload = engine.snapshot_session("snap").to_payload()
        other = Engine(config=TINY)
        handle = other.restore_snapshot(payload)
        provenance = handle.interface().to_dict()["provenance"]["snapshot"]
        assert provenance["restored"] is True
        assert provenance["generation"] == 4
        assert provenance["snapshot_version"] == SNAPSHOT_SCHEMA_VERSION
        # A never-restored engine reports no snapshot provenance.
        report = grown_session(Engine(config=TINY), "sdss", "fresh")[1]
        assert report.to_dict()["provenance"]["snapshot"] is None

    def test_payload_is_json_native(self):
        engine = Engine(config=TINY)
        grown_session(engine, "sdss")
        payload = engine.snapshot_session("snap").to_payload()
        assert payload == json.loads(json.dumps(payload))

    def test_accounting_rides_through(self):
        engine = Engine(config=TINY)
        grown_session(engine, "sdss")
        accounting = {"delivered": 2, "reports": [{"chunk": 0, "cost": 1.5}]}
        snapshot = engine.snapshot_session("snap", accounting=accounting)
        decoded = SessionSnapshot.from_payload(snapshot.to_payload())
        assert decoded.accounting == accounting


class TestRejection:
    def payload(self):
        engine = Engine(config=TINY)
        grown_session(engine, "sdss")
        return engine.snapshot_session("snap").to_payload()

    def test_unknown_version_rejected(self):
        payload = self.payload()
        payload["version"] = SNAPSHOT_SCHEMA_VERSION + 1
        with pytest.raises(SnapshotError, match="version"):
            SessionSnapshot.from_payload(payload)

    def test_non_dict_rejected(self):
        with pytest.raises(SnapshotError):
            SessionSnapshot.from_payload([1, 2, 3])

    def test_missing_keys_rejected(self):
        payload = self.payload()
        del payload["queries"]
        with pytest.raises(SnapshotError, match="missing"):
            SessionSnapshot.from_payload(payload)

    def test_generation_log_disagreement_rejected(self):
        payload = self.payload()
        payload["generation"] += 1
        with pytest.raises(SnapshotError, match="disagrees"):
            SessionSnapshot.from_payload(payload)

    def test_unknown_stats_fields_rejected(self):
        payload = self.payload()
        assert payload["cached"] is not None
        payload["cached"]["stats"]["bogus_counter"] = 7
        with pytest.raises(SnapshotError, match="unknown stats"):
            SessionSnapshot.from_payload(payload)

    def test_context_mismatch_refused(self):
        payload = self.payload()
        other = Engine(
            config=GenerationConfig(
                time_budget_s=0.0, max_iterations=3, seed=1, final_cap=50
            )
        )
        with pytest.raises(SnapshotError, match="context"):
            other.restore_snapshot(payload)

    def test_tampered_cost_refused_at_restore(self):
        payload = self.payload()
        payload["cached"]["cost"] += 1.0
        other = Engine(config=TINY)
        with pytest.raises(SnapshotError, match="disagrees"):
            other.restore_snapshot(payload)

    def test_corrupt_tree_payload_refused(self):
        payload = self.payload()
        payload["best"]["parent"] = payload["best"]["parent"][:-1]
        other = Engine(config=TINY)
        with pytest.raises(SnapshotError):
            other.restore_snapshot(payload)

    def test_malformed_carry_refused(self):
        payload = self.payload()
        payload["carry"] = {"universes": []}  # no nodes
        with pytest.raises(SnapshotError, match="carry"):
            SessionSnapshot.from_payload(payload)

    def test_corrupt_carry_parent_refused_at_restore(self):
        # A forward/self parent index breaks the topological-order
        # invariant the rebase relies on; the deep parse at restore time
        # must refuse it rather than build a cyclic table.
        payload = self.payload()
        assert payload["carry"]["nodes"]
        payload["carry"]["nodes"][-1]["parent"] = len(
            payload["carry"]["nodes"]
        )
        other = Engine(config=TINY)
        with pytest.raises(SnapshotError, match="carried-tree"):
            other.restore_snapshot(payload)


class TestStores:
    def test_memory_store_round_trip_and_stale_rejection(self):
        store = MemorySnapshotStore()
        store.save("a", {"version": 1, "x": 1}, generation=2)
        store.save("a", {"version": 1, "x": 2}, generation=3)
        assert store.load("a").payload["x"] == 2
        with pytest.raises(StaleSnapshotError):
            store.save("a", {"version": 1, "x": 0}, generation=1)
        store.save("a", {"version": 1, "x": 3}, generation=3)  # equal: ok
        assert store.load("a").payload["x"] == 3
        assert store.sessions() == ["a"]
        assert store.delete("a") and not store.delete("a")

    def test_memory_store_enforces_json_contract(self):
        store = MemorySnapshotStore()
        with pytest.raises(TypeError):
            store.save("a", {"bad": object()}, generation=1)

    def test_sqlite_store_round_trip(self, tmp_path):
        path = tmp_path / "snaps.sqlite"
        store = SQLiteSnapshotStore(path)
        store.save("a", {"version": 1, "x": 1}, generation=1)
        store.save("b", {"version": 1, "x": 2}, generation=1)
        assert store.load("a").payload == {"version": 1, "x": 1}
        assert store.sessions() == ["a", "b"]
        with pytest.raises(StaleSnapshotError):
            store.save("a", {"version": 1}, generation=0)
        store.close()
        # Durable across connections.
        reopened = SQLiteSnapshotStore(path)
        assert reopened.load("b").generation == 1
        assert reopened.delete("a")
        reopened.close()

    def test_sqlite_concurrent_writers_keep_max_generation(self, tmp_path):
        # Many threads race interleaved generations at one session; the
        # generation guard must leave the maximum durable regardless of
        # commit order, with every loser surfaced as a stale rejection.
        path = tmp_path / "race.sqlite"
        rejections = []

        def writer(worker):
            store = SQLiteSnapshotStore(path)
            for generation in range(1, 21):
                try:
                    store.save(
                        "shared",
                        {"version": 1, "worker": worker, "gen": generation},
                        generation=generation,
                    )
                except StaleSnapshotError:
                    rejections.append((worker, generation))
            store.close()

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        store = SQLiteSnapshotStore(path)
        record = store.load("shared")
        store.close()
        assert record.generation == 20
        assert record.payload["gen"] == 20

    def test_snapshot_store_validates_on_load(self, tmp_path):
        path = tmp_path / "bad.sqlite"
        store = SQLiteSnapshotStore(path)
        store.save("a", {"version": 999}, generation=1)
        with pytest.raises(SnapshotError, match="version"):
            store.load_snapshot("a")
        assert store.load_snapshot("missing") is None
        store.close()

    def test_open_store_spec_dispatch(self, tmp_path):
        assert isinstance(open_store(None), MemorySnapshotStore)
        sqlite_store = open_store(tmp_path / "s.sqlite")
        assert isinstance(sqlite_store, SQLiteSnapshotStore)
        sqlite_store.close()
        memory = MemorySnapshotStore()
        assert open_store(memory) is memory


class TestSnapshotWriter:
    def test_write_behind_every_k_appends(self):
        engine = Engine(config=TINY)
        store = MemorySnapshotStore()
        writer = SnapshotWriter(store, engine, every_appends=3)
        log = Engine.workload("sdss", 4, seed=5)
        session = engine.session("s")
        session.append(*log[:2])
        session.interface()
        assert not writer.on_delivered("s")  # 2 appends < 3: deferred
        session.append(*log[2:])
        session.interface()
        assert writer.on_delivered("s")  # 4 appends since: written
        assert store.load("s").generation == 4
        assert not writer.on_delivered("s")  # nothing new since

    def test_eviction_hook_persists_evicted_sessions(self):
        engine = Engine(config=TINY, max_sessions=1)
        store = MemorySnapshotStore()
        writer = SnapshotWriter(store, engine)
        writer.attach_eviction_hook()
        log = Engine.workload("sdss", 2, seed=5)
        first = engine.session("first")
        first.append(*log)
        first.interface()
        engine.session("second")  # evicts "first" past the LRU bound
        assert "first" not in engine.sessions()
        assert store.load("first").generation == 2

    def test_drain_snapshots_every_session(self):
        engine = Engine(config=TINY)
        store = MemorySnapshotStore()
        writer = SnapshotWriter(store, engine, every_appends=100)
        log = Engine.workload("sdss", 2, seed=5)
        for sid in ("a", "b"):
            session = engine.session(sid)
            session.append(*log)
            session.interface()
        assert writer.drain(accounting_for=lambda sid: {"sid": sid}) == 2
        assert store.sessions() == ["a", "b"]
        decoded = store.load_snapshot("b")
        assert decoded.accounting == {"sid": "b"}

    def test_stale_rejection_is_swallowed(self):
        engine = Engine(config=TINY)
        store = MemorySnapshotStore()
        writer = SnapshotWriter(store, engine)
        log = Engine.workload("sdss", 2, seed=5)
        session = engine.session("s")
        session.append(*log)
        session.interface()
        store.save("s", {"version": 1}, generation=99)  # a newer writer won
        assert not writer.on_delivered("s")  # rejected, not raised


def _child_payload(workload, queue):
    """Subprocess: serve a session and ship its snapshot payload."""
    engine = Engine(config=TINY)
    log = Engine.workload(workload, 4, seed=5)
    session = engine.session("x")
    session.append(*log)
    report = session.interface()
    queue.put(
        {
            "payload": json.loads(
                json.dumps(engine.snapshot_session("x").to_payload())
            ),
            "cost": report.cost,
            "fingerprint": report.difftree.canonical_key,
        }
    )


class TestCrossProcess:
    def test_two_processes_payloads_restore_to_identical_fingerprints(self):
        # The symbol re-interning regression (PR 8): two processes build
        # their own symbol tables, so shipped payloads carry ids that
        # mean nothing here — from_payload must re-intern heads through
        # this process's SYMBOLS, landing both payloads on the same
        # canonical trees and costs.
        ctx = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        queue = ctx.Queue()
        procs = [
            ctx.Process(target=_child_payload, args=("sdss", queue))
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        shipped = [queue.get(timeout=120) for _ in procs]
        for p in procs:
            p.join(timeout=30)

        reports = []
        for item in shipped:
            engine = Engine(config=TINY)
            handle = engine.restore_snapshot(item["payload"])
            report = handle.interface()
            assert report.cost == item["cost"]
            assert report.difftree.canonical_key == item["fingerprint"]
            reports.append(report)
        assert (
            reports[0].difftree.canonical_key
            == reports[1].difftree.canonical_key
        )
        assert reports[0].cost == reports[1].cost
