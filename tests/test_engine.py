"""Tests for the Engine facade, the strategy/workload registries,
capability enforcement, early config validation, and the report envelope."""

import json

import pytest

import repro.registry as registry
from repro import (
    Engine,
    GenerationConfig,
    GenerationReport,
    IncrementalGenerator,
    Screen,
    generate_interface,
)
from repro.difftree import as_asts, expresses_all, initial_difftree
from repro.engine import (
    get_workload,
    register_strategy,
    register_workload,
    strategy_names,
    strategy_spec,
    workload_names,
    workload_spec,
)
from repro.workloads import listing1_sql

#: A fast config for tests that exercise plumbing, not search quality.
FAST = GenerationConfig(time_budget_s=0.3, seed=0)

#: A deterministic config: iteration-capped, generous wall clock, so two
#: runs with the same seed do identical work regardless of machine load.
DETERMINISTIC = GenerationConfig(time_budget_s=30.0, max_iterations=2, seed=0)


class TestStrategyRegistry:
    def test_builtins_registered(self):
        assert set(strategy_names()) >= {"mcts", "random", "greedy", "beam", "exhaustive"}

    def test_capabilities_declared(self):
        assert strategy_spec("mcts").supports_warm_start
        assert not strategy_spec("greedy").supports_warm_start
        assert not strategy_spec("exhaustive").needs_time_budget

    def test_unknown_strategy_lists_known(self):
        with pytest.raises(ValueError, match="mcts"):
            strategy_spec("simulated-annealing")

    def test_duplicate_registration_rejected(self):
        @register_strategy("test_dup_strategy")
        def runner(model, initial, engine, config, warm_states):
            raise NotImplementedError

        try:
            with pytest.raises(ValueError, match="already registered"):
                register_strategy("test_dup_strategy")(runner)
        finally:
            registry._STRATEGIES.pop("test_dup_strategy", None)

    def test_custom_strategy_usable_in_config(self):
        from repro.search import greedy_search

        @register_strategy("test_greedy_alias", needs_time_budget=True)
        def runner(model, initial, engine, config, warm_states):
            return greedy_search(
                model,
                initial,
                engine=engine,
                time_budget_s=config.time_budget_s,
                k_assignments=config.k_assignments,
                seed=config.seed,
                final_cap=config.final_cap,
            )

        try:
            config = GenerationConfig(strategy="test_greedy_alias", time_budget_s=0.2)
            result = generate_interface(listing1_sql(1, 2), config=config)
            assert result.best.breakdown.feasible
        finally:
            registry._STRATEGIES.pop("test_greedy_alias", None)


class TestWorkloadRegistry:
    def test_builtins_registered(self):
        assert set(workload_names(tag="growing")) == {"sdss", "tpch"}
        assert "synthetic.value_drift" in workload_names(tag="synthetic")

    def test_factory_resolves(self):
        log = get_workload("sdss")(4, seed=0)
        assert len(log) == 4
        assert all(isinstance(sql, str) for sql in log)

    def test_unknown_workload_lists_known(self):
        with pytest.raises(ValueError, match="sdss"):
            get_workload("imdb")

    def test_duplicate_registration_rejected(self):
        register_workload("test_dup_workload")(lambda n, seed=0: [])
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_workload("test_dup_workload")(lambda n, seed=0: [])
        finally:
            registry._WORKLOADS.pop("test_dup_workload", None)

    def test_spec_tags(self):
        assert workload_spec("tpch").has_tag("growing")
        assert not workload_spec("tpch").has_tag("synthetic")


class TestConfigValidation:
    def test_negative_time_budget(self):
        with pytest.raises(ValueError, match="time_budget_s"):
            GenerationConfig(time_budget_s=-0.5)

    def test_zero_k_assignments(self):
        with pytest.raises(ValueError, match="k_assignments"):
            GenerationConfig(k_assignments=0)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            GenerationConfig(strategy="anealing")

    def test_misspelled_exclude_rules(self):
        with pytest.raises(ValueError, match="exclude_rules"):
            GenerationConfig(exclude_rules=("Lift", "Disribute"))

    def test_negative_max_iterations(self):
        with pytest.raises(ValueError, match="max_iterations"):
            GenerationConfig(max_iterations=-1)

    def test_zero_final_cap(self):
        with pytest.raises(ValueError, match="final_cap"):
            GenerationConfig(final_cap=0)

    def test_replace_revalidates(self):
        with pytest.raises(ValueError, match="time_budget_s"):
            FAST.replace(time_budget_s=-1.0)
        assert FAST.replace(seed=7).seed == 7


class TestCapabilityEnforcement:
    def test_warm_states_rejected_without_capability(self):
        queries = as_asts(listing1_sql(1, 3))
        tree = initial_difftree(queries)
        with pytest.raises(ValueError, match="warm start"):
            generate_interface(
                queries,
                config=GenerationConfig(strategy="greedy", time_budget_s=0.2),
                warm_states=[tree],
            )

    def test_incremental_requires_warm_capable_strategy(self):
        with pytest.raises(ValueError, match="supports_warm_start"):
            IncrementalGenerator(config=GenerationConfig(strategy="beam"))

    def test_session_requires_warm_capable_strategy(self):
        engine = Engine(config=GenerationConfig(strategy="random", time_budget_s=0.2))
        with pytest.raises(ValueError, match="supports_warm_start"):
            engine.session("a")

    def test_time_budget_required_when_declared(self):
        config = GenerationConfig(time_budget_s=0.0, max_iterations=0)
        with pytest.raises(ValueError, match="stop condition"):
            generate_interface(listing1_sql(1, 2), config=config)

    def test_iteration_cap_only_accepted_where_consumed(self):
        # MCTS consumes max_iterations: a zero budget with a cap is fine.
        capped = GenerationConfig(time_budget_s=0.0, max_iterations=1)
        result = generate_interface(listing1_sql(1, 2), config=capped)
        assert result.best.breakdown.feasible
        # The walk baselines ignore max_iterations — a zero budget would
        # silently evaluate only the initial state, so it must raise.
        config = GenerationConfig(
            strategy="random", time_budget_s=0.0, max_iterations=500
        )
        with pytest.raises(ValueError, match="does not consume max_iterations"):
            generate_interface(listing1_sql(1, 2), config=config)

    def test_incremental_rejects_non_mcts_even_if_warm_capable(self):
        @register_strategy("test_warm_capable", supports_warm_start=True)
        def runner(model, initial, engine, config, warm_states):
            raise NotImplementedError

        try:
            config = GenerationConfig(strategy="test_warm_capable")
            with pytest.raises(ValueError, match="drives MCTS directly"):
                IncrementalGenerator(config=config)
        finally:
            registry._STRATEGIES.pop("test_warm_capable", None)

    def test_exhaustive_runs_without_budget(self):
        config = GenerationConfig(strategy="exhaustive", time_budget_s=0.0)
        result = generate_interface(listing1_sql(1, 2), config=config)
        assert result.best.breakdown.feasible


class TestEngineParity:
    def test_generate_matches_legacy_exactly(self):
        """Seed-fixed, iteration-capped: Engine.generate and the legacy
        generate_interface must produce identical ascii art and cost."""
        log = listing1_sql(1, 4)
        legacy = generate_interface(log, config=DETERMINISTIC)
        report = Engine(config=DETERMINISTIC).generate(log)
        assert report.cost == legacy.cost
        assert report.ascii_art == legacy.ascii_art


class TestEngine:
    def test_one_shot_caches(self):
        engine = Engine(config=FAST)
        first = engine.generate(listing1_sql(1, 3))
        assert first.source == "search"
        assert engine.searches_run == 1
        again = engine.generate(listing1_sql(1, 3))
        assert again.source == "cache"
        assert again.result is first.result
        assert engine.searches_run == 1

    def test_session_flow(self):
        engine = Engine(config=FAST)
        session = engine.session("a")
        session.append(*listing1_sql(1, 3))
        assert session.log_length == 3
        first = session.interface()
        assert first.source == "search"
        assert first.session_id == "a"
        repeat = session.interface()
        assert repeat.source == "cache"
        assert repeat.result is first.result
        session.append(*listing1_sql(4, 5))
        warm = session.interface()
        assert warm.source == "search"
        assert warm.warm_states_seeded >= 1
        assert expresses_all(warm.difftree, as_asts(listing1_sql(1, 5)))
        assert [r.source for r in session.history()] == ["search", "cache", "search"]

    def test_session_handle_is_shared(self):
        engine = Engine(config=FAST)
        assert engine.session("a") is engine.session("a")

    def test_sessions_isolated(self):
        engine = Engine(config=FAST)
        a = engine.session("a")
        b = engine.session("b")
        a.append(*listing1_sql(1, 2))
        b.append(*listing1_sql(3, 4))
        ra, rb = a.interface(), b.interface()
        assert expresses_all(ra.difftree, as_asts(listing1_sql(1, 2)))
        assert expresses_all(rb.difftree, as_asts(listing1_sql(3, 4)))

    def test_one_shot_result_feeds_session_cache(self):
        engine = Engine(config=FAST)
        log = listing1_sql(1, 3)
        engine.generate(log)
        session = engine.session("a")
        session.append(*log)
        report = session.interface()
        assert report.source == "cache"
        assert engine.searches_run == 1

    def test_drop_session(self):
        engine = Engine(config=FAST)
        session = engine.session("a")
        session.append(*listing1_sql(1, 2))
        session.interface()
        assert session.drop()
        assert not session.drop()
        # Reading the length auto-creates a fresh, empty stream.
        assert session.log_length == 0

    def test_generate_batch_order_and_cache(self):
        engine = Engine(config=FAST, executor="serial")
        logs = [listing1_sql(1, 2), listing1_sql(3, 4)]
        reports = engine.generate_batch(logs)
        assert [r.source for r in reports] == ["batch", "batch"]
        for log, report in zip(logs, reports):
            assert expresses_all(report.difftree, as_asts(log))
        # Batch results land in the cache: a one-shot repeat is a hit.
        assert engine.generate(logs[0]).source == "cache"

    def test_empty_session_raises(self):
        engine = Engine(config=FAST)
        with pytest.raises(ValueError, match="empty"):
            engine.session("a").interface()

    def test_invalid_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            Engine(executor="gpu")

    def test_workload_helper(self):
        log = Engine.workload("tpch", 3, seed=1)
        assert len(log) == 3

    def test_history_is_bounded(self):
        engine = Engine(config=FAST, max_history=2)
        session = engine.session("a")
        session.append(*listing1_sql(1, 2))
        first = session.interface()
        for _ in range(3):
            session.interface()  # cache hits, but each yields a report
        history = session.history()
        assert len(history) == 2
        assert first not in history

    def test_negative_max_history_rejected(self):
        with pytest.raises(ValueError, match="max_history"):
            Engine(max_history=-1)


class TestGenerationReport:
    def test_to_dict_is_json_serializable(self):
        report = Engine(config=FAST).generate(listing1_sql(1, 3))
        payload = report.to_dict()
        roundtrip = json.loads(json.dumps(payload))
        assert roundtrip["schema_version"] == 4
        assert roundtrip["source"] == "search"
        assert roundtrip["strategy"] == "mcts"
        assert roundtrip["log_size"] == 3
        assert roundtrip["feasible"] is True
        assert roundtrip["cost"] == pytest.approx(report.cost)
        assert roundtrip["ascii_art"] == report.ascii_art
        assert roundtrip["breakdown"]["m_cost"] >= 0
        assert roundtrip["search"]["stats"]["iterations"] >= 1
        assert roundtrip["provenance"]["cache"]["misses"] >= 1
        assert roundtrip["timings"]["total_s"] > 0
        assert roundtrip["screen"] == {"width": 1100.0, "height": 700.0}

    def test_invalid_source_rejected(self):
        report = Engine(config=FAST).generate(listing1_sql(1, 2))
        with pytest.raises(ValueError, match="source"):
            GenerationReport(result=report.result, source="oracle")

    def test_passthroughs_match_result(self):
        report = Engine(config=FAST).generate(listing1_sql(1, 2))
        assert report.cost == report.result.cost
        assert report.widget_tree is report.result.widget_tree
        assert "<html" in report.html().lower()


class TestScreenInKey:
    def test_different_screen_is_a_different_entry(self):
        log = listing1_sql(1, 3)
        wide = Engine(config=FAST, screen=Screen.wide())
        narrow = Engine(config=FAST, screen=Screen.narrow(), cache=wide.cache)
        wide.generate(log)
        assert narrow.generate(log).source == "search"
