"""Tests for the layout solver and the cost model."""

import math

import pytest

from repro.cost import (
    CostModel,
    CostWeights,
    coordinate_descent,
    exhaustive_evaluation,
    sampled_evaluation,
    worst_sampled_evaluation,
)
from repro.difftree import initial_difftree
from repro.layout import BOX_GAP, BOX_PADDING, Box, Screen, fits, measure, overflow
from repro.rules import forward_engine
from repro.sqlast import parse
from repro.widgets import GreedyChooser, WidgetNode, derive_widget_tree, domain_of
from repro.widgets.tree import WidgetNode as WN


def factored(queries):
    engine = forward_engine()
    tree = initial_difftree([parse(q) for q in queries])
    while True:
        moves = [m for m in engine.moves(tree) if m.rule_name != "Multi"]
        if not moves:
            return tree
        tree = engine.apply(tree, moves[0])


def leaf(widget="toggle", title=""):
    from repro.difftree import all_node, any_node, opt_node

    node = opt_node(all_node("ColExpr", "a"))
    return WN(widget=widget, choice_path=(0,), domain=domain_of(node), title=title)


class TestLayout:
    def test_vertical_stacks_heights(self):
        a, b = leaf(), leaf()
        box_v = measure(WN(widget="vertical", children=(a, b)))
        box_single = measure(a)
        assert box_v.height > 2 * box_single.height  # + gap + padding
        assert box_v.width >= box_single.width

    def test_horizontal_sums_widths(self):
        a, b = leaf(), leaf()
        box_h = measure(WN(widget="horizontal", children=(a, b)))
        single = measure(a)
        assert box_h.width > 2 * single.width
        assert box_h.height < box_h.width

    def test_empty_box_is_zero(self):
        assert measure(WN(widget="vertical")) == Box(0.0, 0.0)

    def test_title_adds_height(self):
        with_title = measure(leaf(title="WHERE"))
        without = measure(leaf())
        assert with_title.height > without.height

    def test_tabs_height_includes_header(self):
        page = WN(widget="vertical", children=(leaf(),))
        node = WN(widget="tabs", children=(page, page), domain=None)
        # tabs need a domain for header size; use a simple binary domain
        from repro.difftree import all_node, any_node

        domain = domain_of(
            any_node([all_node("ColExpr", "aa"), all_node("ColExpr", "bb")])
        )
        node = WN(widget="tabs", children=(page, page), domain=domain)
        assert measure(node).height > measure(page).height

    def test_adder_wraps_content(self):
        from repro.difftree import all_node, multi_node

        domain = domain_of(multi_node(all_node("ColExpr", "a")))
        node = WN(widget="adder", domain=domain, children=(leaf(),))
        assert measure(node).height > measure(leaf()).height

    def test_fits_and_overflow(self):
        node = WN(widget="vertical", children=(leaf(), leaf(), leaf()))
        box = measure(node)
        assert fits(node, Screen(box.width, box.height))
        assert not fits(node, Screen(box.width - 1, box.height))
        over_w, over_h = overflow(node, Screen(box.width - 10, box.height - 5))
        assert over_w == pytest.approx(10)
        assert over_h == pytest.approx(5)

    def test_size_class_affects_box(self):
        small = WN(widget="dropdown", size_class="S", domain=leaf().domain, choice_path=(0,))
        large = WN(widget="dropdown", size_class="L", domain=leaf().domain, choice_path=(0,))
        assert measure(small).width < measure(large).width


class TestCostModel:
    FIG1 = (
        "SELECT sales FROM sales WHERE cty = 'USA'",
        "SELECT costs FROM sales WHERE cty = 'EUR'",
        "SELECT costs FROM sales",
    )

    def model(self, queries=None, screen=None, **weights):
        queries = [parse(q) for q in (queries or self.FIG1)]
        return CostModel(
            queries, screen or Screen.wide(), weights=CostWeights(**weights)
        ), queries

    def test_requires_queries(self):
        with pytest.raises(ValueError):
            CostModel([], Screen.wide())

    def test_m_cost_sums_over_widgets(self):
        model, queries = self.model()
        tree = factored(self.FIG1)
        root = derive_widget_tree(tree, GreedyChooser())
        total = model.appropriateness(root)
        assert total > 0
        parts = [n.wtype.appropriateness(n.domain) for n in root.walk()]
        assert total == pytest.approx(sum(parts))

    def test_u_zero_for_identical_consecutive_queries(self):
        model, queries = self.model(
            queries=["select a from t", "select a from t"]
        )
        tree = initial_difftree(queries)
        root = derive_widget_tree(tree, GreedyChooser())
        u, steiner, effort, pairs = model.sequence_cost(tree, root)
        assert u == 0.0
        assert steiner == 0

    def test_u_counts_changed_widgets(self):
        model, queries = self.model()
        tree = factored(self.FIG1)
        root = derive_widget_tree(tree, GreedyChooser())
        u, steiner, effort, pairs = model.sequence_cost(tree, root)
        assert len(pairs) == 2
        assert all(p > 0 for p in pairs)
        # q1->q2 touches 2 widgets; q2->q3 touches the toggle only.
        assert pairs[0] > pairs[1]

    def test_infeasible_when_screen_too_small(self):
        model, queries = self.model(screen=Screen(50, 50))
        tree = factored(self.FIG1)
        root = derive_widget_tree(tree, GreedyChooser())
        breakdown = model.evaluate(tree, root)
        assert not breakdown.feasible
        assert math.isinf(breakdown.total)
        assert breakdown.rank[0] == 1
        assert breakdown.overflow_w > 0 or breakdown.overflow_h > 0

    def test_weights_scale_terms(self):
        tree = factored(self.FIG1)
        model1, _ = self.model(m=1.0, u=0.3)
        model2, _ = self.model(m=2.0, u=0.3)
        root = derive_widget_tree(tree, GreedyChooser())
        assert model2.evaluate(tree, root).m_cost == pytest.approx(
            2 * model1.evaluate(tree, root).m_cost
        )

    def test_assignment_cache_consistency(self):
        model, queries = self.model()
        tree = factored(self.FIG1)
        first = model.assignments(tree)
        second = model.assignments(tree)
        assert first is second  # cached

    def test_steiner_single_widget_is_one(self):
        model, queries = self.model(
            queries=["select a from t where x < 1", "select a from t where x < 2"]
        )
        tree = factored(
            ["select a from t where x < 1", "select a from t where x < 2"]
        )
        root = derive_widget_tree(tree, GreedyChooser())
        _, steiner, _, pairs = model.sequence_cost(tree, root)
        assert steiner == 1  # one widget changes per step
        assert len(pairs) == 1


class TestEvaluation:
    FIG1 = TestCostModel.FIG1

    def test_sampled_beats_or_equals_any_single_sample(self):
        import random

        queries = [parse(q) for q in self.FIG1]
        model = CostModel(queries, Screen.wide())
        tree = factored(self.FIG1)
        best = sampled_evaluation(model, tree, k=8, rng=random.Random(0))
        greedy_only = sampled_evaluation(model, tree, k=1, rng=random.Random(0))
        assert best.rank <= greedy_only.rank

    def test_exhaustive_at_least_as_good_as_sampled(self):
        queries = [parse(q) for q in self.FIG1]
        model = CostModel(queries, Screen.wide())
        tree = factored(self.FIG1)
        exhaustive = exhaustive_evaluation(model, tree)
        sampled = sampled_evaluation(model, tree, k=10)
        assert exhaustive.rank <= sampled.rank

    def test_coordinate_descent_improves_over_greedy(self):
        queries = [parse(q) for q in self.FIG1]
        model = CostModel(queries, Screen.wide())
        tree = factored(self.FIG1)
        cd = coordinate_descent(model, tree)
        greedy = sampled_evaluation(model, tree, k=1)
        assert cd.rank <= greedy.rank

    def test_worst_sampled_is_worse_than_best(self):
        import random

        queries = [parse(q) for q in self.FIG1]
        model = CostModel(queries, Screen.wide())
        tree = factored(self.FIG1)
        worst = worst_sampled_evaluation(model, tree, k=15, rng=random.Random(1))
        best = sampled_evaluation(model, tree, k=15, rng=random.Random(1))
        assert worst.cost >= best.cost
