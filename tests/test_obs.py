"""Tests for the repro.obs observability subsystem (PR 6).

Three contracts:

* **Unification** — counters, gauges, bounded histograms, and the
  absorbed ad-hoc sources (memo tables, caches, ingest/kernel counters)
  all surface through one registry snapshot under stable dotted names.
* **Attribution** — spans collected while producing a report belong to
  exactly that report, including under the multi-worker scheduler (the
  lossless / non-interleaved guarantee).
* **Replay** — every Engine verb's telemetry ``report`` record equals
  ``report.to_dict()`` byte-for-byte, and the JSONL log parses line by
  line even when written from concurrent workers.
"""

import json
import threading

import pytest

from repro import Engine, GenerationConfig, obs
from repro.engine.report import REPORT_SCHEMA_VERSION, TIMING_PHASES
from repro.memo import BoundedLRU
from repro.obs import (
    MemoryTelemetry,
    MetricsRegistry,
    TelemetryLog,
    read_telemetry,
)
from repro.workloads import listing1_sql, sdss_session_sql

TINY = GenerationConfig(time_budget_s=0.0, max_iterations=2, seed=0, final_cap=50)

LOG = listing1_sql(1, 3)


@pytest.fixture(autouse=True)
def _obs_off_between_tests():
    """Every test starts and ends disabled with no sink attached."""
    obs.configure(enabled=False, telemetry=None)
    yield
    obs.configure(enabled=False, telemetry=None)


class TestMetricsRegistry:
    def test_counter_gauge_histogram_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("a.hits").inc()
        reg.counter("a.hits").inc(2)
        reg.gauge("a.depth").set(7)
        for v in range(100):
            reg.histogram("a.lat").observe(float(v))
        snap = reg.snapshot()
        assert snap["a.hits"] == 3
        assert snap["a.depth"] == 7
        assert snap["a.lat.count"] == 100
        assert snap["a.lat.min"] == 0.0
        assert snap["a.lat.max"] == 99.0
        assert snap["a.lat.p50"] == pytest.approx(49.0, abs=2.0)
        assert snap["a.lat.p95"] == pytest.approx(94.0, abs=2.0)
        assert snap["a.lat.p99"] == pytest.approx(98.0, abs=2.0)

    def test_get_or_create_is_stable_and_type_checked(self):
        reg = MetricsRegistry()
        c = reg.counter("x.n")
        assert reg.counter("x.n") is c
        with pytest.raises(TypeError):
            reg.gauge("x.n")

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        for bad in ("", "Upper.case", "spaces in", "trailing.", ".leading"):
            with pytest.raises(ValueError):
                reg.counter(bad)

    def test_histogram_reservoir_is_bounded(self):
        reg = MetricsRegistry()
        h = reg.histogram("b.lat", reservoir_size=16)
        for v in range(1000):
            h.observe(float(v))
        snap = h.snapshot()
        assert snap["count"] == 1000  # exact even past the reservoir
        assert snap["max"] == 999.0
        assert snap["p50"] >= 900.0  # reservoir keeps the recent tail

    def test_prometheus_text_exposition(self):
        reg = MetricsRegistry()
        reg.counter("serve.hits").inc(5)
        reg.histogram("span.engine.generate").observe(0.5)
        text = reg.prometheus_text()
        assert "# TYPE serve_hits counter" in text
        assert "serve_hits 5" in text
        assert "span_engine_generate_count 1" in text

    def test_reset_keeps_sources(self):
        reg = MetricsRegistry()
        reg.counter("x.n").inc()
        reg.register_source("src", lambda: {"v": 1})
        reg.reset()
        snap = reg.snapshot()
        assert "x.n" not in snap
        assert snap["src.v"] == 1


class TestAbsorbedSources:
    def test_bounded_lru_registers_and_reports_uniformly(self):
        lru = BoundedLRU(2, name="test_obs.lru")
        lru["a"] = 1
        lru.get("a")
        lru.get("zzz")
        lru["b"] = 2
        lru["c"] = 3  # evicts "a"
        snap = obs.snapshot()
        stats = {
            k.rsplit(".", 1)[-1]: v
            for k, v in snap.items()
            if k.startswith("cache.test_obs.lru.")
        }
        assert stats == {
            "hits": 1,
            "misses": 1,
            "evictions": 1,
            "entries": 2,
            "capacity": 2,
        }

    def test_builtin_memo_tables_present_in_snapshot(self):
        engine = Engine(config=TINY)  # kept alive: its cache/router are weak sources
        engine.generate(LOG)
        snap = obs.snapshot()
        for name in (
            "cache.sqlast.parse.hits",
            "cache.difftree.anti_unify.hits",
            "ingest.parses",
            "serve.cache.hits",
            "serve.router.stream_parses",
        ):
            assert name in snap, f"missing {name}"

    def test_live_cost_model_caches_registered(self):
        """Per-instance caches appear while their owner lives and vanish
        with it (weak sources — registration cannot leak models)."""
        from repro.core import prepare_search

        asts, screen, model, initial, rules = prepare_search(LOG, config=TINY)
        snap = obs.snapshot()
        assert any(k.startswith("cache.cost.kernels") for k in snap)
        assert any(k.startswith("cache.cost.assignments") for k in snap)
        del model
        snap = obs.snapshot()
        assert not any(k.startswith("cache.cost.kernels") for k in snap)

    def test_dead_instance_sources_are_pruned(self):
        before = {n for n in obs.snapshot() if n.startswith("cache.test_obs.dead")}
        assert not before
        lru = BoundedLRU(4, name="test_obs.dead")
        assert any(n.startswith("cache.test_obs.dead") for n in obs.snapshot())
        del lru
        assert not any(n.startswith("cache.test_obs.dead") for n in obs.snapshot())

    def test_name_collisions_get_suffixes(self):
        a = BoundedLRU(4, name="test_obs.dup")
        b = BoundedLRU(4, name="test_obs.dup")
        names = {n for n in obs.snapshot() if n.startswith("cache.test_obs.dup")}
        assert any(".hits" in n and "#2" not in n for n in names)
        assert any("#2" in n for n in names)
        del a, b


class TestTracer:
    def test_disabled_trace_is_shared_noop(self):
        assert obs.trace("x") is obs.trace("y")

    def test_enabled_spans_collect_and_measure(self):
        obs.configure(enabled=True)
        with obs.collecting() as spans:
            with obs.trace("unit.outer", k="v"):
                with obs.trace("unit.inner"):
                    pass
        assert [s["name"] for s in spans] == ["unit.inner", "unit.outer"]
        assert spans[1]["tags"] == {"k": "v"}
        assert all(s["duration_s"] >= 0.0 for s in spans)
        snap = obs.snapshot()
        assert snap["span.unit.inner.count"] >= 1

    def test_collectors_nest_without_stealing(self):
        obs.configure(enabled=True)
        with obs.collecting() as outer:
            with obs.collecting() as inner:
                with obs.trace("unit.nested"):
                    pass
        assert len(outer) == 1 and len(inner) == 1
        assert outer[0] is inner[0]

    def test_collectors_are_thread_local(self):
        obs.configure(enabled=True)
        leaked = []
        done = threading.Event()
        with obs.collecting(leaked):

            def other():
                with obs.trace("unit.other_thread"):
                    pass
                done.set()

            t = threading.Thread(target=other)
            t.start()
            t.join()
        assert done.is_set()
        assert leaked == []


class TestSinks:
    def test_telemetry_log_roundtrip(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with TelemetryLog(path, flush_every=1) as log:
            log.write({"type": "span", "name": "a"})
            log.write({"type": "report", "verb": "generate"})
        records = read_telemetry(path)
        assert [r["type"] for r in records] == ["span", "report"]
        assert read_telemetry(path, record_type="report")[0]["verb"] == "generate"

    def test_configure_with_path_owns_and_closes_sink(self, tmp_path):
        path = str(tmp_path / "owned.jsonl")
        obs.configure(enabled=True, telemetry=path)
        sink = obs.telemetry_sink()
        assert isinstance(sink, TelemetryLog)
        with obs.trace("unit.owned"):
            pass
        obs.configure(telemetry=None)  # detaching closes the owned file
        assert sink._fh.closed
        assert read_telemetry(path, record_type="span")[0]["name"] == "unit.owned"

    def test_observed_restores_prior_state(self):
        sink = MemoryTelemetry()
        assert not obs.enabled()
        with obs.observed(True, telemetry=sink):
            assert obs.enabled()
            with obs.trace("unit.observed"):
                pass
        assert not obs.enabled()
        assert obs.telemetry_sink() is None
        assert [r["name"] for r in sink.of_type("span")] == ["unit.observed"]


class TestReportIntegration:
    def test_schema_has_trace_and_phase_timings(self):
        report = Engine(config=TINY).generate(LOG)
        payload = report.to_dict()
        assert payload["schema_version"] == REPORT_SCHEMA_VERSION == 4
        assert payload["trace"] == []  # disabled -> no spans, key present
        for phase in TIMING_PHASES:
            assert phase in payload["timings"]

    def test_generate_trace_and_replay_record(self):
        sink = MemoryTelemetry()
        with obs.observed(True, telemetry=sink):
            report = Engine(config=TINY).generate(LOG)
        names = [s["name"] for s in report.trace]
        assert "engine.generate" in names
        assert any(n.startswith("search.step") for n in names)
        timings = report.timings
        assert timings["parse_s"] > 0.0
        assert timings["search_s"] > 0.0
        records = sink.of_type("report")
        assert len(records) == 1
        assert records[0]["verb"] == "generate"
        assert records[0]["report"] == report.to_dict()

    def test_session_interface_trace_and_phases(self):
        sink = MemoryTelemetry()
        with obs.observed(True, telemetry=sink):
            engine = Engine(config=TINY)
            session = engine.session("obs-test")
            session.append(*LOG)
            report = session.interface()
        names = [s["name"] for s in report.trace]
        for expected in (
            "engine.session.interface",
            "serve.open_search",
            "search.step",
            "serve.finish",
        ):
            assert expected in names, f"missing span {expected} in {names}"
        assert report.timings["search_s"] > 0.0
        record = sink.of_type("report")[-1]
        assert record["verb"] == "session.interface"
        assert record["report"] == report.to_dict()

    def test_cache_hit_report_emitted_with_zero_search(self):
        sink = MemoryTelemetry()
        engine = Engine(config=TINY)
        engine.generate(LOG)  # populate the cache while disabled
        with obs.observed(True, telemetry=sink):
            report = engine.generate(LOG)
        assert report.source == "cache"
        assert report.timings["search_s"] == 0.0
        assert sink.of_type("report")[0]["report"]["source"] == "cache"

    def test_search_metrics_absorbed_after_run(self):
        obs.reset_metrics()
        with obs.observed(True):
            Engine(config=TINY).generate(LOG)
        snap = obs.snapshot()
        assert snap["search.runs"] >= 1
        assert snap["search.iterations"] >= 1
        assert snap["cost.kernel.full_evals"] >= 1
        assert snap["search.elapsed_s.count"] >= 1

    def test_enabled_vs_disabled_costs_identical(self):
        cold = Engine(config=TINY).generate(LOG)
        with obs.observed(True):
            warm = Engine(config=TINY).generate(LOG)
        assert warm.cost == cold.cost
        assert warm.difftree.canonical_key == cold.difftree.canonical_key


class TestSchedulerObservability:
    def _scripts(self, n=6):
        return {
            f"s{i}": [
                tuple(sdss_session_sql(2, seed=i)[:1]),
                tuple(sdss_session_sql(2, seed=i)[1:]),
            ]
            for i in range(n)
        }

    def test_concurrent_scheduler_spans_lossless_and_attributed(self):
        """workers=4: every delivered report carries exactly its own
        session's spans — no losses, no cross-session interleaving."""
        scripts = self._scripts()
        sink = MemoryTelemetry()
        with obs.observed(True, telemetry=sink):
            engine = Engine(config=TINY)
            scheduler = engine.scheduler(slice_iterations=1)
            for sid, chunks in scripts.items():
                scheduler.submit(sid, chunks)
            tickets = scheduler.run(workers=4)
        assert all(t.state == "done" for t in tickets)
        for ticket in tickets:
            assert len(ticket.reports) == 2
            for report in ticket.reports:
                names = [s["name"] for s in report.trace]
                assert "scheduler.slice" in names
                assert "serve.open_search" in names
                # Attribution: every tagged span names this session only.
                for span in report.trace:
                    session = span.get("tags", {}).get("session")
                    if session is not None:
                        assert session == ticket.session_id
                # Lossless: one open + one finish per delivered report.
                assert names.count("serve.open_search") == 1
                assert names.count("serve.finish") == 1

    def test_concurrent_scheduler_replay_records_match_reports(self):
        scripts = self._scripts(4)
        sink = MemoryTelemetry()
        with obs.observed(True, telemetry=sink):
            engine = Engine(config=TINY)
            scheduler = engine.scheduler(slice_iterations=1)
            for sid, chunks in scripts.items():
                scheduler.submit(sid, chunks)
            tickets = scheduler.run(workers=4)
        expected = [
            json.dumps(r.to_dict(), sort_keys=True)
            for t in tickets
            for r in t.reports
        ]
        recorded = [
            json.dumps(rec["report"], sort_keys=True)
            for rec in sink.of_type("report")
        ]
        assert sorted(recorded) == sorted(expected)

    def test_concurrent_jsonl_lines_all_parse(self, tmp_path):
        """Concurrent workers writing one file: every line is valid JSON
        (single-string dump + single locked write — no interleaving)."""
        path = str(tmp_path / "sched.jsonl")
        scripts = self._scripts(4)
        with obs.observed(True, telemetry=path):
            engine = Engine(config=TINY)
            scheduler = engine.scheduler(slice_iterations=1)
            for sid, chunks in scripts.items():
                scheduler.submit(sid, chunks)
            scheduler.run(workers=4)
            obs.telemetry_sink().flush()
            records = read_telemetry(path)
        assert len(records) > 0
        assert len(read_telemetry(path, record_type="report")) == 8
