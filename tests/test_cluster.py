"""Sharded multi-process serving: routing, parity, and crash recovery.

Scale note: this box may have a single CPU core, so every cluster run
here is *tiny* (few sessions, two-iteration searches) — these tests
check protocol correctness (cost/fingerprint parity with the
single-process scheduler, kill-one-worker rehydration), not speed;
``benchmarks/bench_cluster.py`` owns the latency claims.
"""

import collections

import pytest

from repro import Engine, GenerationConfig, memo
from repro.serve import ClusterError, ClusterFront, HashRing
from repro.serve.batch import generate_interfaces_batch

TINY = GenerationConfig(time_budget_s=0.0, max_iterations=2, seed=0, final_cap=50)


def scripts(n_sessions, chunks=2, chunk_size=2):
    """Per-session chunked query scripts over distinct sdss logs."""
    out = {}
    for i in range(n_sessions):
        log = Engine.workload("sdss", chunks * chunk_size, seed=i)
        out[f"s{i:02d}"] = [
            tuple(log[j * chunk_size:(j + 1) * chunk_size])
            for j in range(chunks)
        ]
    return out


def single_process_results(scripts_by_sid):
    """Per-session (costs, fingerprints) from the one-process scheduler."""
    engine = Engine(config=TINY)
    scheduler = engine.scheduler(slice_iterations=4)
    for sid, chunks in scripts_by_sid.items():
        scheduler.submit(sid, chunks)
    out = {}
    for ticket in scheduler.run():
        assert ticket.state == "done"
        out[ticket.session_id] = (
            [r.cost for r in ticket.reports],
            [r.difftree.canonical_key for r in ticket.reports],
        )
    return out


class TestHashRing:
    def test_deterministic_and_stable(self):
        ring = HashRing(range(4))
        placements = {f"s{i:02d}": ring.node_for(f"s{i:02d}") for i in range(32)}
        again = HashRing(range(4))
        assert placements == {
            sid: again.node_for(sid) for sid in placements
        }

    def test_spreads_structured_session_ids(self):
        # Real session ids are near-identical strings; the ring must
        # still use every worker (the original crc32 ring collapsed all
        # of them onto one).
        ring = HashRing(range(4))
        counts = collections.Counter(
            ring.node_for(f"s{i:02d}") for i in range(64)
        )
        assert set(counts) == {0, 1, 2, 3}

    def test_removal_moves_only_the_dead_workers_slice(self):
        ring = HashRing(range(4))
        before = {f"s{i:02d}": ring.node_for(f"s{i:02d}") for i in range(64)}
        ring.remove(2)
        for sid, owner in before.items():
            if owner != 2:
                assert ring.node_for(sid) == owner
            else:
                assert ring.node_for(sid) != 2

    def test_membership_errors(self):
        ring = HashRing(range(2))
        with pytest.raises(ValueError):
            ring.add(1)
        with pytest.raises(KeyError):
            ring.remove(9)
        with pytest.raises(ValueError):
            HashRing(range(2), replicas=0)
        ring.remove(0)
        ring.remove(1)
        with pytest.raises(ClusterError):
            ring.node_for("s")


class TestSubmission:
    def test_empty_and_duplicate_scripts_rejected(self):
        front = ClusterFront(config=TINY, workers=2)
        try:
            with pytest.raises(ValueError, match="non-empty"):
                front.submit("s", [])
            log = Engine.workload("sdss", 2, seed=0)
            front.submit("s", [log])
            with pytest.raises(ValueError, match="unfinished"):
                front.submit("s", [log])
        finally:
            front.close()

    def test_front_parameter_validation(self):
        with pytest.raises(ValueError):
            ClusterFront(config=TINY, workers=0)
        with pytest.raises(ValueError):
            ClusterFront(config=TINY, workers=1, snapshot_every=0)

    def test_engine_cluster_refuses_custom_rules(self):
        engine = Engine(config=TINY, rules=object())
        with pytest.raises(ValueError, match="rules"):
            engine.cluster()


class TestClusterParity:
    def test_costs_and_fingerprints_match_single_process(self, tmp_path):
        jobs = scripts(4)
        expected = single_process_results(jobs)
        engine = Engine(config=TINY)
        with engine.cluster(
            workers=2,
            store=str(tmp_path / "snaps.sqlite"),
            slice_iterations=4,
        ) as front:
            for sid, chunks in jobs.items():
                front.submit(sid, chunks)
            tickets = front.run(timeout_s=300)
            assert all(t.state == "done" for t in tickets)
            for ticket in tickets:
                costs, fingerprints = expected[ticket.session_id]
                assert ticket.costs == costs
                assert ticket.fingerprints == fingerprints
                assert not ticket.recovered
                assert ticket.worker_history == [ticket.worker]
                assert ticket.first_interface_s is not None
            # Both workers served their own hash slice.
            assert len({t.worker for t in tickets}) == 2
            # Graceful drain collected every worker's metric snapshot,
            # and durable snapshots cover every session.
            assert sorted(front.worker_metrics()) == [0, 1]
            merged = front.merged_worker_metrics()
            assert merged["serve.cluster.deliveries"] == sum(
                len(chunks) for chunks in jobs.values()
            )
        from repro.serve import SQLiteSnapshotStore

        store = SQLiteSnapshotStore(tmp_path / "snaps.sqlite")
        assert store.sessions() == sorted(jobs)
        for sid, chunks in jobs.items():
            record = store.load(sid)
            assert record.generation == sum(len(c) for c in chunks)
        store.close()


class TestRecovery:
    def test_killed_worker_sessions_rehydrate_with_identical_costs(self):
        jobs = scripts(6, chunks=2, chunk_size=1)
        expected = single_process_results(jobs)
        ring = HashRing(range(2))
        busiest = collections.Counter(
            ring.node_for(sid) for sid in jobs
        ).most_common(1)[0][0]
        engine = Engine(config=TINY)
        with engine.cluster(workers=2, slice_iterations=4) as front:
            for sid, chunks in jobs.items():
                front.submit(sid, chunks)
            tickets = front.run(
                timeout_s=300, kill_worker=busiest, kill_after=2
            )
            assert all(t.state == "done" for t in tickets)
            recovered = [t for t in tickets if t.recovered]
            assert recovered  # the kill landed mid-run
            for ticket in recovered:
                assert ticket.worker_history[0] == busiest
                assert ticket.worker != busiest
            for ticket in tickets:
                costs, fingerprints = expected[ticket.session_id]
                assert ticket.costs == costs
                assert ticket.fingerprints == fingerprints

    def test_last_worker_dying_raises(self):
        jobs = scripts(2, chunks=1, chunk_size=1)
        engine = Engine(config=TINY)
        front = engine.cluster(workers=1, slice_iterations=4)
        try:
            for sid, chunks in jobs.items():
                front.submit(sid, chunks)
            with pytest.raises(ClusterError, match="every worker died"):
                front.run(timeout_s=300, kill_worker=0, kill_after=1)
        finally:
            front.close()


class TestBatchWirePath:
    def test_wire_results_match_the_pickle_oracle(self):
        # Satellite check: the columnar wire path across the process
        # pool must be bit-identical to the legacy pickled-object path
        # (the reference mode behind the fast-path gate).
        logs = [Engine.workload("sdss", 3, seed=i) for i in range(2)]
        wire = generate_interfaces_batch(
            logs, config=TINY, max_workers=2, executor="process"
        )
        with memo.fast_paths(False):
            oracle = generate_interfaces_batch(
                logs, config=TINY, max_workers=2, executor="process"
            )
        for ours, theirs in zip(wire, oracle):
            assert ours.best.breakdown.total == theirs.best.breakdown.total
            assert (
                ours.difftree.canonical_key == theirs.difftree.canonical_key
            )
            assert repr(ours.best.widget_tree) == repr(theirs.best.widget_tree)
            assert ours.search.stats == theirs.search.stats
            # History points are (wall-clock, cost): only the cost
            # trajectory is deterministic.
            assert [c for _, c in ours.search.history] == [
                c for _, c in theirs.search.history
            ]
