"""Tests for difftree nodes, wrapping, and normalization."""

import pytest

from repro.difftree import (
    ALL,
    ANY,
    EMPTY,
    EMPTY_NODE,
    MULTI,
    OPT,
    DTNode,
    all_node,
    any_node,
    initial_difftree,
    is_normalized,
    multi_node,
    normalize,
    opt_node,
    pretty,
    unwrap_ast,
    wrap_ast,
)
from repro.sqlast import parse


class TestDTNodeBasics:
    def test_all_requires_label(self):
        with pytest.raises(ValueError):
            DTNode(ALL)

    def test_opt_requires_single_child(self):
        with pytest.raises(ValueError):
            DTNode(OPT, children=())
        with pytest.raises(ValueError):
            DTNode(OPT, children=(EMPTY_NODE, EMPTY_NODE))

    def test_any_requires_alternatives(self):
        with pytest.raises(ValueError):
            DTNode(ANY, children=())

    def test_empty_must_be_bare(self):
        with pytest.raises(ValueError):
            DTNode(EMPTY, label="X")

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            DTNode("WAT")

    def test_immutability(self):
        node = all_node("ColExpr", "a")
        with pytest.raises(AttributeError):
            node.kind = ANY

    def test_canonical_key_is_stable_and_structural(self):
        a = wrap_ast(parse("select a from t"))
        b = wrap_ast(parse("select a from t"))
        assert a.canonical_key == b.canonical_key
        assert a == b
        c = wrap_ast(parse("select b from t"))
        assert a.canonical_key != c.canonical_key

    def test_replace_at(self):
        tree = wrap_ast(parse("select a from t"))
        replaced = tree.replace_at((0, 0), all_node("ColExpr", "z"))
        assert replaced.at((0, 0)).value == "z"
        assert tree.at((0, 0)).value == "a"

    def test_choice_nodes_listing(self):
        tree = any_node([wrap_ast(parse("select a from t")), wrap_ast(parse("select b from t"))])
        choices = tree.choice_nodes()
        assert choices[0][0] == ()
        assert choices[0][1].kind == ANY

    def test_wrap_unwrap_roundtrip(self):
        ast = parse("select top 3 a from t where x < 1")
        assert unwrap_ast(wrap_ast(ast)) == ast

    def test_unwrap_choice_raises(self):
        with pytest.raises(ValueError):
            unwrap_ast(any_node([EMPTY_NODE, wrap_ast(parse("select a from t"))]))

    def test_pretty_contains_heads(self):
        text = pretty(wrap_ast(parse("select a from t")))
        assert "Select" in text
        assert "ColExpr='a'" in text


class TestNormalization:
    def col(self, name):
        return all_node("ColExpr", name)

    def test_singleton_any_collapses(self):
        assert normalize(any_node([self.col("a")])) == self.col("a")

    def test_duplicate_alternatives_removed(self):
        node = normalize(any_node([self.col("a"), self.col("a"), self.col("b")]))
        assert len(node.children) == 2

    def test_nested_any_flattened(self):
        inner = any_node([self.col("a"), self.col("b")])
        node = normalize(any_node([inner, self.col("c")]))
        assert node.kind == ANY
        assert all(c.kind == ALL for c in node.children)
        assert len(node.children) == 3

    def test_numeric_alternatives_sorted_numerically(self):
        node = normalize(
            any_node(
                [
                    all_node("Top", 1000),
                    all_node("Top", 10),
                    all_node("Top", 100),
                ]
            )
        )
        assert [c.value for c in node.children] == [10, 100, 1000]

    def test_empty_sorts_first(self):
        node = normalize(any_node([self.col("a"), EMPTY_NODE]))
        assert node.children[0].kind == EMPTY

    def test_opt_of_empty_is_empty(self):
        assert normalize(opt_node(EMPTY_NODE)) == EMPTY_NODE

    def test_opt_of_opt_collapses(self):
        assert normalize(opt_node(opt_node(self.col("a")))) == opt_node(self.col("a"))

    def test_opt_drops_empty_alternative_of_child_any(self):
        node = normalize(opt_node(any_node([EMPTY_NODE, self.col("a")])))
        assert node.kind == OPT
        assert node.children[0] == self.col("a")

    def test_multi_of_multi_collapses(self):
        assert normalize(multi_node(multi_node(self.col("a")))) == multi_node(
            self.col("a")
        )

    def test_multi_of_empty_is_empty(self):
        assert normalize(multi_node(EMPTY_NODE)) == EMPTY_NODE

    def test_normalize_idempotent(self):
        node = any_node(
            [
                any_node([self.col("a"), self.col("a")]),
                opt_node(opt_node(self.col("b"))),
            ]
        )
        once = normalize(node)
        assert normalize(once) == once
        assert is_normalized(once)


class TestInitialDifftree:
    def test_root_is_any_over_queries(self, fig1_queries):
        tree = initial_difftree(fig1_queries)
        assert tree.kind == ANY
        assert len(tree.children) == 3

    def test_single_query_is_wrapped_ast(self):
        tree = initial_difftree([parse("select a from t")])
        assert tree.kind == ALL

    def test_duplicates_removed(self):
        tree = initial_difftree(
            [parse("select a from t"), parse("select a from t"), parse("select b from t")]
        )
        assert len(tree.children) == 2

    def test_accepts_sql_strings(self):
        tree = initial_difftree(["select a from t", "select b from t"])
        assert tree.kind == ANY

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            initial_difftree([])

    def test_bad_type_raises(self):
        with pytest.raises(TypeError):
            initial_difftree([42])
