"""End-to-end integration tests spanning every layer of the library."""

import pytest

from repro import GenerationConfig, Screen, generate_interface
from repro.datagen import make_sdss_database
from repro.difftree import expresses_all
from repro.sqlast import parse, to_sql
from repro.vis import render_chart
from repro.workloads import listing1_queries, listing1_sql, mixed_session_log


class TestEndToEnd:
    def test_sdss_pipeline_wide(self):
        """Log in → interface out → every log query replayable → charts."""
        result = generate_interface(
            listing1_sql(),
            screen=Screen.wide(),
            config=GenerationConfig(time_budget_s=3.0, seed=13),
        )
        assert result.best.breakdown.feasible
        assert expresses_all(result.difftree, result.queries)

        db = make_sdss_database(rows_per_table=60, seed=5)
        session = result.session(db)
        for query in listing1_queries():
            session.load_query(query)
            rows = session.run()
            spec = session.chart()
            assert render_chart(spec, rows).strip()

    def test_generated_interface_generalizes(self):
        """The difftree usually expresses queries *not* in the log."""
        result = generate_interface(
            listing1_sql(6, 8),
            config=GenerationConfig(time_budget_s=2.0, seed=2),
        )
        # Same structure, new TOP/table combination not in the log.
        novel = parse(
            "select top 10 objid from stars where u between 0 and 30 "
            "and g between 5 and 25 and r between 2 and 28 and i between 1 and 29"
        )
        from repro.difftree import expresses

        assert expresses(result.difftree, novel)

    def test_widget_interactions_drive_execution(self):
        result = generate_interface(
            listing1_sql(6, 8),
            config=GenerationConfig(time_budget_s=2.0, seed=3),
        )
        db = make_sdss_database(rows_per_table=80, seed=1)
        session = result.session(db)
        baseline_sql = session.current_sql
        changed = False
        for widget in session.widgets():
            if widget.domain and widget.domain.kind in ("numeric", "string", "subtree"):
                for index in range(len(widget.domain.labels)):
                    session.set_choice(widget.choice_path, index)
                    session.run()  # every option executes
                    if session.current_sql != baseline_sql:
                        changed = True
        assert changed

    def test_mixed_log_all_strategies_express_inputs(self):
        queries = mixed_session_log(num_queries=8, seed=6)
        for strategy in ("mcts", "greedy"):
            result = generate_interface(
                queries,
                config=GenerationConfig(
                    strategy=strategy, time_budget_s=1.5, seed=1
                ),
            )
            assert expresses_all(result.difftree, queries)
            assert result.best.breakdown.feasible

    def test_html_and_ascii_always_renderable(self):
        for log in (listing1_sql(1, 3), listing1_sql(6, 8)):
            result = generate_interface(
                log, config=GenerationConfig(time_budget_s=1.0, seed=4)
            )
            assert result.ascii_art.strip()
            html = result.html()
            assert html.count("<div") >= 1

    def test_search_diagnostics_populated(self):
        result = generate_interface(
            listing1_sql(1, 4),
            config=GenerationConfig(time_budget_s=1.5, seed=5),
        )
        stats = result.search.stats
        assert stats.states_evaluated > 0
        assert result.search.elapsed > 0
        assert result.search.history

    def test_single_query_log_degenerates_gracefully(self):
        result = generate_interface(
            ["select a from t"],
            config=GenerationConfig(time_budget_s=0.3, seed=0),
        )
        assert result.best.breakdown.feasible
        assert result.widget_tree.widget == "label"

    def test_deterministic_generation_under_iteration_cap(self):
        config = GenerationConfig(time_budget_s=60.0, seed=9)
        from repro.search import MCTSConfig, mcts_search
        from repro.cost import CostModel
        from repro.difftree import initial_difftree

        queries = [parse(s) for s in listing1_sql(1, 4)]
        cfg = MCTSConfig(time_budget_s=60.0, max_iterations=3, seed=9)
        a = mcts_search(CostModel(queries, Screen.wide()), initial_difftree(queries), config=cfg)
        b = mcts_search(CostModel(queries, Screen.wide()), initial_difftree(queries), config=cfg)
        assert to_sql(a.best_state and parse("select a from t")) == to_sql(parse("select a from t"))
        assert a.best_cost == b.best_cost
