"""Cross-append carry of the MCTS search tree + log retention (PR 9).

Covers the carry unit semantics (harvest cap / parent closure, rebase
survival rules, payload round-trip), the serve-layer integration
(report provenance, gate-off parity oracle, eviction releasing the
tree), log retention with bounded recompute (``LogStream.remove`` /
``retain``, ``CompiledSequence.without``, the ``search.carry.*``
retention counters), the ``PendingSearch.finish()`` double-call
contract, and slice-invariance of carried runs for all five strategies.
"""

import gc
import json

import pytest

from repro import Engine, GenerationConfig, memo
from repro.cost import CostModel
from repro.cost.kernel import CompiledSequence
from repro.difftree import initial_difftree
from repro.layout import Screen
from repro.search import CarriedTree, MCTS, MCTSConfig
from repro.search.baselines import (
    BeamSearchTask,
    ExhaustiveSearchTask,
    GreedySearchTask,
    RandomSearchTask,
)
from repro.search.carry import STAT_DECAY, STATS
from repro.search.mcts import _TreeNode
from repro.serve import IncrementalGenerator, LogStream
from repro.sqlast import parse

TINY = GenerationConfig(time_budget_s=0.0, max_iterations=3, seed=0, final_cap=50)


def sdss(n, seed=5):
    return Engine.workload("sdss", n, seed=seed)


def run_mcts(queries, max_iterations=6, seed=3):
    """One finished iteration-capped MCTS run; returns (model, initial, mcts)."""
    model = CostModel(queries, Screen.wide())
    initial = initial_difftree(queries)
    mcts = MCTS(
        model,
        config=MCTSConfig(
            time_budget_s=0.0, max_iterations=max_iterations, seed=seed
        ),
    )
    task = mcts.open(initial)
    task.step()
    task.result()
    return model, initial, mcts


def assert_parent_closed(table):
    for node in table.values():
        assert node.parent_key is None or node.parent_key in table


class TestCarriedTreeUnit:
    def test_harvest_keeps_whole_table_under_cap(self):
        queries = [parse(q) for q in sdss(2)]
        model, _, mcts = run_mcts(queries)
        carried = CarriedTree.harvest(mcts, model, log_len=2, max_nodes=10_000)
        assert set(carried.nodes) == set(mcts.nodes)
        assert list(carried.nodes) == list(mcts.nodes)  # insertion order
        assert set(carried.universes) == set(carried.nodes)
        assert carried.log_len == 2
        # Harvested nodes are copies: mutating the live table must not
        # leak into the carried one.
        key = next(iter(mcts.nodes))
        mcts.nodes[key].visits += 100
        assert carried.nodes[key].visits != mcts.nodes[key].visits

    def test_harvest_cap_is_parent_closed(self):
        queries = [parse(q) for q in sdss(3)]
        model, _, mcts = run_mcts(queries, max_iterations=12)
        assert len(mcts.nodes) > 4
        carried = CarriedTree.harvest(mcts, model, log_len=3, max_nodes=4)
        assert 1 <= len(carried.nodes) <= 4
        assert_parent_closed(carried.nodes)

    def test_rebase_duplicate_append_carries_everything(self):
        # Appending a repeat of the last query changes no choice paths:
        # every carried node survives.  Non-root survivors keep their
        # mean rewards with visit mass decayed (exploration pressure
        # returns after a rebase); the re-anchored root restarts stat-free.
        queries = [parse(q) for q in sdss(3)]
        model, initial, mcts = run_mcts(queries)
        carried = CarriedTree.harvest(mcts, model, log_len=3)
        table, prov = carried.rebase(initial, queries[-1], [queries[-1]])
        assert prov["nodes_carried"] == len(carried.nodes)
        assert prov["nodes_invalidated"] == 0
        assert prov["appended"] == 1
        assert_parent_closed(table)
        for key, node in carried.nodes.items():
            twin = table[key]
            if twin.parent_key is None:
                assert twin.visits == 0 and twin.reward_sum == 0.0
                continue
            assert twin.visits == max(1, int(node.visits * STAT_DECAY))
            if node.visits:
                assert twin.reward_sum / twin.visits == pytest.approx(
                    node.reward_sum / node.visits
                )

    def test_rebase_novel_append_reanchors_root_stat_free(self):
        # The root always survives re-anchored to the grown log's initial
        # state, but its statistics are dropped: carried root visits
        # (normalized against the prior cost range) would crush the UCT
        # exploration bonus and starve the re-expansion the append makes
        # necessary.
        base = [parse(q) for q in sdss(4)]
        model, _, mcts = run_mcts(base[:3], max_iterations=10)
        carried = CarriedTree.harvest(mcts, model, log_len=3)
        new_initial = initial_difftree(base)
        table, prov = carried.rebase(new_initial, base[2], base[3:])
        root = table[new_initial.canonical_key]
        assert root.parent_key is None
        assert root.visits == 0
        assert root.reward_sum == 0.0
        assert not root.expanded
        assert root.state is new_initial
        assert prov["nodes_carried"] + prov["nodes_invalidated"] == len(
            carried.nodes
        )
        assert_parent_closed(table)
        # A parent whose child was invalidated re-enters the frontier.
        if prov["nodes_invalidated"]:
            assert prov["nodes_reopened"] >= 0

    def test_payload_round_trip(self):
        queries = [parse(q) for q in sdss(3)]
        model, _, mcts = run_mcts(queries)
        carried = CarriedTree.harvest(mcts, model, log_len=3)
        payload = json.loads(json.dumps(carried.to_payload()))
        restored = CarriedTree.from_payload(payload)
        assert list(restored.nodes) == list(carried.nodes)
        assert restored.log_len == carried.log_len
        assert restored.universes == carried.universes
        for key, node in carried.nodes.items():
            twin = restored.nodes[key]
            assert twin.parent_key == node.parent_key
            assert twin.visits == node.visits
            assert twin.reward_sum == node.reward_sum
            assert twin.expanded == node.expanded
            assert twin.depth == node.depth

    def test_from_payload_rejects_corruption(self):
        with pytest.raises(ValueError):
            CarriedTree.from_payload([1, 2])
        with pytest.raises(ValueError):
            CarriedTree.from_payload({"nodes": [], "log_len": -1})
        with pytest.raises(ValueError):
            CarriedTree.from_payload({"nodes": 7, "log_len": 1})
        queries = [parse(q) for q in sdss(2)]
        model, _, mcts = run_mcts(queries)
        payload = CarriedTree.harvest(mcts, model, log_len=2).to_payload()
        # A parent link must point at an earlier node.
        payload["nodes"][0]["parent"] = 0
        with pytest.raises(ValueError, match="parent"):
            CarriedTree.from_payload(payload)


class TestFinishContract:
    def test_finish_twice_raises(self):
        gen = IncrementalGenerator(config=TINY)
        gen.append(*sdss(2))
        pending = gen.open_search()
        assert pending.cached is None
        pending.task.step()
        pending.finish()
        with pytest.raises(RuntimeError, match="finish"):
            pending.finish()


def live_tree_nodes():
    gc.collect()
    return sum(1 for obj in gc.get_objects() if type(obj) is _TreeNode)


class TestServeIntegration:
    def test_carry_provenance_in_reports(self):
        engine = Engine(config=TINY)
        session = engine.session("carry")
        log = sdss(3)
        session.append(*log[:2])
        first = session.interface()
        assert first.to_dict()["provenance"]["carry"] is None  # nothing carried yet
        session.append(log[2])
        second = session.interface()
        carry = second.to_dict()["provenance"]["carry"]
        assert carry is not None
        assert carry["appended"] == 1
        assert carry["nodes_carried"] >= 1  # the root always survives
        assert (
            carry["nodes_carried"] + carry["nodes_invalidated"]
            == carry["nodes_harvested"]
        )

    def test_gate_off_restores_reference_path(self):
        # The parity oracle: with the carry gate off, serving matches the
        # rebuild-from-scratch path and reports no carry provenance.
        log = sdss(3)

        def serve(enabled):
            with memo.carry(enabled):
                engine = Engine(config=TINY)
                session = engine.session("oracle")
                session.append(*log[:2])
                session.interface()
                session.append(log[2])
                return session.interface()

        carried, reference = serve(True), serve(False)
        assert reference.to_dict()["provenance"]["carry"] is None
        assert carried.cost == pytest.approx(reference.cost)
        assert carried.log_size == reference.log_size

    def test_drop_session_releases_carried_tree(self):
        gen = IncrementalGenerator(config=TINY)
        gen.append(*sdss(2))
        before = live_tree_nodes()
        gen.generate()
        assert live_tree_nodes() > before  # the carried tree is alive
        assert gen.drop_session()
        assert live_tree_nodes() <= before

    def test_engine_lru_eviction_releases_carried_tree(self):
        engine = Engine(config=TINY, max_sessions=1)
        before = live_tree_nodes()
        session = engine.session("a")
        session.append(*sdss(2))
        session.interface()
        assert live_tree_nodes() > before
        engine.session("b")  # evicts "a", the only other session
        assert live_tree_nodes() <= before


class TestRetention:
    def test_remove_semantics(self):
        stream = LogStream()
        log = sdss(3)
        stream.append(*log)
        assert stream.remove([]) == ()
        assert stream.remove([0, -1]) == (0, 2)
        assert len(stream) == 1
        assert stream.sql() == (log[1],)
        with pytest.raises(IndexError):
            stream.remove([5])

    def test_remove_keeps_log_key_for_duplicates(self):
        stream = LogStream()
        log = sdss(2)
        stream.append(log[0], log[0], log[1])
        key = stream.log_key()
        # Dropping one copy of a repeated query leaves the distinct set
        # (and hence the cached fingerprint) untouched.
        stream.remove([0])
        assert stream.log_key() == key
        stream.remove([0])  # the last copy: the distinct set shrinks
        assert stream.log_key() != key

    def test_retain_last_n(self):
        stream = LogStream()
        stream.append(*sdss(3))
        assert stream.retain(last_n=5) == ()
        assert stream.retain(last_n=2) == (0,)
        assert len(stream) == 2

    def test_retain_max_age(self):
        stream = LogStream()
        stream.append(*sdss(3))
        stream._times[:] = [0.0, 10.0, 20.0]
        assert stream.retain(max_age_s=5.0, now=21.0) == (0, 1)
        assert len(stream) == 1

    def test_retain_needs_a_bound(self):
        stream = LogStream()
        stream.append(*sdss(1))
        with pytest.raises(ValueError, match="last_n"):
            stream.retain()
        with pytest.raises(ValueError):
            stream.retain(last_n=-1)

    @pytest.mark.parametrize(
        "dropped,expected_rediffs",
        [([0], 0), ([3], 0), ([1], 1), ([1, 2], 1)],
    )
    def test_compiled_sequence_without_matches_recompile(
        self, dropped, expected_rediffs
    ):
        queries = [parse(q) for q in sdss(4)]
        tree = initial_difftree(queries)
        seq = CompiledSequence.compile(tree, queries)
        shrunk, rediffed = seq.without(dropped)
        assert rediffed == expected_rediffs
        kept = [q for i, q in enumerate(queries) if i not in dropped]
        fresh = CompiledSequence.compile(tree, kept)
        assert shrunk.queries == fresh.queries
        assert shrunk.changes.pair_paths == fresh.changes.pair_paths

    def test_generator_retention_counters(self):
        gen = IncrementalGenerator(config=TINY)
        gen.append(*sdss(4))
        gen.generate()
        before = STATS.snapshot()
        assert gen.retain(last_n=3) == 3
        after = STATS.snapshot()
        assert after["retention_removals"] - before["retention_removals"] == 1
        retracted = after["retention_retracts"] - before["retention_retracts"]
        assert retracted >= 1
        # Prefix retention rejoins at most one boundary pair per carried
        # sequence — the bounded-recompute contract.
        rediffed = (
            after["retention_pairs_rediffed"] - before["retention_pairs_rediffed"]
        )
        assert rediffed <= retracted
        shrunk = gen.generate()
        assert len(shrunk.queries) == 3

    def test_generator_remove_midlog_and_continue(self):
        gen = IncrementalGenerator(config=TINY)
        log = sdss(4)
        gen.append(*log)
        gen.generate()
        assert gen.remove([1]) == 3
        regenerated = gen.generate()
        assert len(regenerated.queries) == 3
        kept = [parse(q) for i, q in enumerate(log) if i != 1]
        assert [q.fingerprint for q in regenerated.queries] == [
            q.fingerprint for q in kept
        ]


class TestSlicedParity:
    """Iteration-sliced runs are bit-identical to monolithic runs."""

    def _assert_identical(self, mono, sliced):
        assert mono.best_cost == sliced.best_cost
        assert mono.best.tree.canonical_key == sliced.best.tree.canonical_key
        assert mono.stats == sliced.stats
        assert [c for _, c in mono.history] == [c for _, c in sliced.history]

    def _drive(self, make_task, total=None):
        mono, sliced = make_task(), make_task()
        if total is None:  # self-terminating strategy
            mono.step()
            while not sliced.done:
                sliced.step(n_iterations=3)
        else:
            assert mono.step(n_iterations=total) == total
            run = 0
            while run < total:
                run += sliced.step(n_iterations=2)
        self._assert_identical(mono.result(), sliced.result())

    def _fixture(self, n=2):
        # The model is built inside each task factory call: kernel
        # counters are cumulative per model, so sharing one would make
        # the second run's stats snapshot include the first run's work.
        queries = [parse(q) for q in sdss(n)]
        initial = initial_difftree(queries)
        return (lambda: CostModel(queries, Screen.wide())), initial

    def test_mcts_carried_sliced_matches_monolithic(self):
        base = [parse(q) for q in sdss(3)]
        model0, _, mcts0 = run_mcts(base[:2], max_iterations=6)
        carried = CarriedTree.harvest(mcts0, model0, log_len=2)
        full_initial = initial_difftree(base)
        config = MCTSConfig(time_budget_s=0.0, max_iterations=8, seed=3)

        def make_task():
            # rebase() returns a fresh copy-table each call, so the two
            # runs never share mutable nodes; a fresh model each keeps
            # the per-model kernel counters comparable.
            table, _ = carried.rebase(full_initial, base[1], base[2:])
            model = CostModel(base, Screen.wide())
            return MCTS(model, config=config, node_table=table).open(
                full_initial
            )

        mono, sliced = make_task(), make_task()
        mono.step()
        while not sliced.done:
            sliced.step(n_iterations=3)
        self._assert_identical(mono.result(), sliced.result())

    def test_random_sliced_matches_monolithic(self):
        make_model, initial = self._fixture()
        self._drive(
            lambda: RandomSearchTask(
                make_model(), initial, time_budget_s=None, seed=3, final_cap=50
            ),
            total=8,
        )

    def test_greedy_sliced_matches_monolithic(self):
        make_model, initial = self._fixture()
        self._drive(
            lambda: GreedySearchTask(
                make_model(), initial, time_budget_s=None, seed=3, final_cap=50
            )
        )

    def test_beam_sliced_matches_monolithic(self):
        make_model, initial = self._fixture()
        self._drive(
            lambda: BeamSearchTask(
                make_model(),
                initial,
                time_budget_s=None,
                beam_width=4,
                max_depth=6,
                seed=3,
                final_cap=50,
            )
        )

    def test_exhaustive_sliced_matches_monolithic(self):
        make_model, initial = self._fixture()
        self._drive(
            lambda: ExhaustiveSearchTask(
                make_model(), initial, max_states=120, seed=3, final_cap=50
            )
        )
