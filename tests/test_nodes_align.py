"""Tests for AST node utilities and alignment/diffing."""

import pytest

from repro.sqlast import align_children, alignable, count_differences, diff_paths, parse
from repro.sqlast import nodes as N
from repro.sqlast.nodes import Node


class TestNodeBasics:
    def test_immutability(self):
        node = N.col("a")
        with pytest.raises(AttributeError):
            node.value = "b"
        with pytest.raises(AttributeError):
            del node.label

    def test_children_must_be_nodes(self):
        with pytest.raises(TypeError):
            Node("Project", None, ["not a node"])

    def test_size(self):
        ast = parse("select a from t where x < 1")
        assert ast.size == ast.children[0].size + ast.children[1].size + ast.children[2].size + 1

    def test_walk_preorder(self):
        ast = parse("select a from t")
        labels = [n.label for n in ast.walk()]
        assert labels[0] == N.SELECT
        assert labels[1] == N.PROJECT

    def test_walk_paths_root_is_empty(self):
        ast = parse("select a from t")
        paths = dict(ast.walk_paths())
        assert paths[()] is ast
        assert paths[(0, 0)].value == "a"

    def test_at_and_replace_at(self):
        ast = parse("select a from t")
        assert ast.at((0, 0)).value == "a"
        new = ast.replace_at((0, 0), N.col("b"))
        assert new.at((0, 0)).value == "b"
        assert ast.at((0, 0)).value == "a"  # original untouched

    def test_replace_at_with_none_deletes(self):
        ast = parse("select a from t where x < 1")
        new = ast.replace_at((2,), None)
        assert new.child_by_label(N.WHERE) is None

    def test_replace_root_with_none_raises(self):
        with pytest.raises(ValueError):
            parse("select a from t").replace_at((), None)

    def test_child_by_label_missing(self):
        assert parse("select a from t").child_by_label(N.WHERE) is None

    def test_equality_shortcircuits_on_hash(self):
        a = parse("select a from t")
        b = parse("select b from t")
        assert a != b
        assert a == parse("select a from t")

    def test_num_rejects_bool(self):
        with pytest.raises(TypeError):
            N.num(True)

    def test_num_normalizes_integral_float(self):
        assert N.num(10.0).value == 10
        assert isinstance(N.num(10.0).value, int)

    def test_order_item_validates_direction(self):
        with pytest.raises(ValueError):
            N.order_item(N.col("a"), "sideways")


class TestAlignment:
    def test_same_label_different_value_aligns(self):
        assert alignable(N.col("sales"), N.col("costs"))

    def test_structural_value_labels_do_not_align(self):
        a = N.biexpr("=", N.col("x"), N.num(1))
        b = N.biexpr("<", N.col("x"), N.num(1))
        assert not alignable(a, b)

    def test_different_labels_do_not_align(self):
        assert not alignable(N.col("x"), N.num(1))

    def test_align_children_simple(self):
        rows = [
            [N.col("a"), N.num(1)],
            [N.col("b"), N.num(2)],
        ]
        columns = align_children(rows)
        assert len(columns) == 2
        assert columns[0][0].value == "a"
        assert columns[0][1].value == "b"

    def test_align_children_with_missing(self):
        rows = [
            [N.col("a"), N.num(1)],
            [N.col("b")],
        ]
        columns = align_children(rows)
        assert len(columns) == 2
        assert columns[1][1] is None

    def test_align_children_duplicate_key_fails(self):
        rows = [[N.col("a"), N.col("b")]]
        assert align_children(rows) is None

    def test_align_children_conflicting_order_fails(self):
        rows = [
            [N.col("a"), N.num(1)],
            [N.num(2), N.col("b")],
        ]
        assert align_children(rows) is None


class TestDiffPaths:
    def test_paper_figure1_q1_q2(self):
        a = parse("SELECT sales FROM sales WHERE cty = 'USA'")
        b = parse("SELECT costs FROM sales WHERE cty = 'EUR'")
        diffs = list(diff_paths(a, b))
        assert len(diffs) == 2
        paths = {p for p, _, _ in diffs}
        assert (0, 0) in paths  # ColExpr sales->costs

    def test_paper_figure1_q2_q3_drops_where(self):
        b = parse("SELECT costs FROM sales WHERE cty = 'EUR'")
        c = parse("SELECT costs FROM sales")
        diffs = list(diff_paths(b, c))
        assert len(diffs) == 1
        path, sub_a, sub_b = diffs[0]
        assert sub_a.label == N.WHERE
        assert sub_b is None

    def test_identical_queries_no_diff(self):
        a = parse("select a from t")
        assert count_differences(a, a) == 0

    def test_insertion_reported(self):
        a = parse("select a from t")
        b = parse("select top 5 a from t")
        diffs = list(diff_paths(a, b))
        assert len(diffs) == 1
        _, sub_a, sub_b = diffs[0]
        assert sub_a is None
        assert sub_b.label == N.TOP

    def test_root_label_mismatch_is_whole_tree_diff(self):
        a = N.col("x")
        b = N.num(1)
        diffs = list(diff_paths(a, b))
        assert diffs == [((), a, b)]

    def test_count_differences_monotone_example(self):
        base = parse("select a from t where x < 1")
        one = parse("select b from t where x < 1")
        two = parse("select b from t where x < 9")
        assert count_differences(base, one) == 1
        assert count_differences(base, two) == 2
