"""Tests for the interaction runtime, renderers, and vis recommender."""

import pytest

from repro.database import Database, Table, execute
from repro.datagen import make_sdss_database
from repro.difftree import initial_difftree
from repro.interface import (
    InteractionError,
    InterfaceSession,
    instantiate,
    render_ascii,
    render_html,
)
from repro.rules import forward_engine
from repro.sqlast import parse, to_sql
from repro.vis import (
    BAR,
    BIG_NUMBER,
    HISTOGRAM,
    SCATTER,
    TABLE,
    recommend_chart,
    render_chart,
)
from repro.widgets import GreedyChooser, derive_widget_tree

FIG1 = (
    "SELECT sales FROM sales WHERE cty = 'USA'",
    "SELECT costs FROM sales WHERE cty = 'EUR'",
    "SELECT costs FROM sales",
)


def factored(queries):
    engine = forward_engine()
    tree = initial_difftree([parse(q) for q in queries])
    while True:
        moves = [m for m in engine.moves(tree) if m.rule_name != "Multi"]
        if not moves:
            return tree
        tree = engine.apply(tree, moves[0])


@pytest.fixture
def sales_db():
    return Database(
        [
            Table(
                "sales",
                {
                    "cty": ["USA", "EUR", "USA"],
                    "sales": [10, 20, 30],
                    "costs": [5, 15, 25],
                },
            )
        ]
    )


@pytest.fixture
def session(sales_db):
    tree = factored(FIG1)
    widget_tree = derive_widget_tree(tree, GreedyChooser())
    return InterfaceSession(
        tree, widget_tree, db=sales_db, initial_query=parse(FIG1[0])
    )


class TestInstantiate:
    def test_defaults_resolve(self):
        tree = factored(FIG1)
        query = instantiate(tree, {})
        assert query.label == "Select"

    def test_assignment_roundtrip(self):
        from repro.difftree import assignment_for

        tree = factored(FIG1)
        for sql in FIG1:
            ast = parse(sql)
            assignment = assignment_for(tree, ast)
            assert instantiate(tree, assignment) == ast

    def test_invalid_any_choice_raises(self):
        tree = factored(FIG1)
        path = tree.choice_nodes()[0][0]
        node = tree.at(path)
        if node.kind == "ANY":
            with pytest.raises(InteractionError):
                instantiate(tree, {path: 99})


class TestSession:
    def test_initial_query_loaded(self, session):
        assert session.current_sql == to_sql(parse(FIG1[0]))

    def test_widgets_listing(self, session):
        widgets = session.widgets()
        assert len(widgets) == 3
        assert all(w.choice_path is not None for w in widgets)

    def test_select_option_changes_query(self, session):
        projection_widget = next(
            w
            for w in session.widgets()
            if w.domain and set(w.domain.labels) == {"sales", "costs"}
        )
        session.select_option(projection_widget.choice_path, "costs")
        assert "costs" in session.current_sql

    def test_toggle_removes_where(self, session):
        toggle = next(
            w for w in session.widgets() if w.domain and w.domain.kind == "boolean"
        )
        session.toggle(toggle.choice_path)
        assert "WHERE" not in session.current_sql

    def test_load_query(self, session):
        session.load_query(parse(FIG1[2]))
        assert session.current_sql == to_sql(parse(FIG1[2]))

    def test_load_inexpressible_raises(self, session):
        with pytest.raises(InteractionError):
            session.load_query(parse("select zz from qq"))

    def test_can_express(self, session):
        assert session.can_express(parse(FIG1[1]))
        assert not session.can_express(parse("select zz from qq"))

    def test_run_executes_current_query(self, session):
        result = session.run()
        assert result.column("sales") == [10, 30]  # cty = USA

    def test_interaction_log_recorded(self, session):
        toggle = next(
            w for w in session.widgets() if w.domain and w.domain.kind == "boolean"
        )
        session.toggle(toggle.choice_path)
        session.toggle(toggle.choice_path)
        assert len(session.interaction_log) == 2

    def test_run_without_db_raises(self):
        tree = factored(FIG1)
        widget_tree = derive_widget_tree(tree, GreedyChooser())
        session = InterfaceSession(tree, widget_tree)
        with pytest.raises(InteractionError):
            session.run()

    def test_bad_option_label_raises(self, session):
        widget = session.widgets()[0]
        with pytest.raises(InteractionError):
            session.select_option(widget.choice_path, "not-an-option")

    def test_full_log_replay_on_sdss(self):
        from repro.workloads import listing1_queries

        queries = listing1_queries()
        tree = factored([to_sql(q) for q in queries])
        widget_tree = derive_widget_tree(tree, GreedyChooser())
        db = make_sdss_database(rows_per_table=50)
        session = InterfaceSession(tree, widget_tree, db=db, initial_query=queries[0])
        for query in queries:
            session.load_query(query)
            session.run()  # every log query must execute through the UI


class TestRenderers:
    def test_ascii_mentions_widgets(self):
        tree = factored(FIG1)
        art = render_ascii(derive_widget_tree(tree, GreedyChooser()))
        assert "toggle" in art
        assert "+-" in art  # boxes drawn

    def test_ascii_tabs_and_adder(self):
        tree = initial_difftree(
            [parse("select a from t where u between 0 and 30 and g between 0 and 30")]
        )
        from repro.rules import default_engine

        engine = default_engine()
        move = [m for m in engine.moves(tree) if m.rule_name == "Multi"][0]
        merged = engine.apply(tree, move)
        art = render_ascii(derive_widget_tree(merged, GreedyChooser()))
        assert "add" in art

    def test_html_is_selfcontained(self):
        tree = factored(FIG1)
        html_text = render_html(derive_widget_tree(tree, GreedyChooser()), title="T")
        assert html_text.startswith("<!DOCTYPE html>")
        assert "<select>" in html_text or "checkbox" in html_text
        assert "</html>" in html_text

    def test_html_escapes_labels(self):
        from repro.widgets.tree import WidgetNode

        node = WidgetNode(widget="label", title="<script>")
        assert "<script>" not in render_html(node)


class TestVis:
    def run(self, db, sql):
        return execute(db, parse(sql))

    def test_count_star_is_big_number(self, sales_db):
        result = self.run(sales_db, "select count(*) from sales")
        spec = recommend_chart(result, parse("select count(*) from sales"))
        assert spec.kind == BIG_NUMBER

    def test_grouped_aggregate_is_bar(self, sales_db):
        sql = "select cty, sum(sales) from sales group by cty"
        spec = recommend_chart(self.run(sales_db, sql), parse(sql))
        assert spec.kind == BAR
        assert spec.x == "cty"

    def test_two_numeric_is_scatter(self, sales_db):
        sql = "select sales, costs from sales"
        spec = recommend_chart(self.run(sales_db, sql), parse(sql))
        assert spec.kind == SCATTER

    def test_single_numeric_is_histogram(self, sales_db):
        sql = "select sales from sales"
        spec = recommend_chart(self.run(sales_db, sql), parse(sql))
        assert spec.kind == HISTOGRAM

    def test_fallback_is_table(self, sales_db):
        sql = "select cty from sales"
        spec = recommend_chart(self.run(sales_db, sql), parse(sql))
        assert spec.kind == TABLE

    @pytest.mark.parametrize(
        "sql",
        [
            "select count(*) from sales",
            "select cty, sum(sales) from sales group by cty",
            "select sales, costs from sales",
            "select sales from sales",
            "select cty from sales",
        ],
    )
    def test_render_chart_never_empty(self, sales_db, sql):
        result = self.run(sales_db, sql)
        spec = recommend_chart(result, parse(sql))
        text = render_chart(spec, result)
        assert text.strip()

    def test_session_chart_end_to_end(self, session):
        spec = session.chart()
        assert spec.kind in (BIG_NUMBER, BAR, SCATTER, HISTOGRAM, TABLE)
