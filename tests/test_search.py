"""Tests for MCTS and the baseline search strategies."""

import math

import pytest

from repro.cost import CostModel
from repro.difftree import expresses_all, initial_difftree
from repro.layout import Screen
from repro.search import (
    MCTS,
    MCTSConfig,
    StateEvaluator,
    beam_search,
    exhaustive_search,
    greedy_search,
    mcts_search,
    normalized_reward,
    random_search,
)
from repro.sqlast import parse

FIG1 = (
    "SELECT sales FROM sales WHERE cty = 'USA'",
    "SELECT costs FROM sales WHERE cty = 'EUR'",
    "SELECT costs FROM sales",
)


@pytest.fixture
def setup():
    queries = [parse(q) for q in FIG1]
    model = CostModel(queries, Screen.wide())
    tree = initial_difftree(queries)
    return queries, model, tree


class TestNormalizedReward:
    def test_best_maps_to_one(self):
        assert normalized_reward(10.0, 10.0, 50.0) == 1.0

    def test_worst_maps_to_zero(self):
        assert normalized_reward(50.0, 10.0, 50.0) == 0.0

    def test_infeasible_is_zero(self):
        assert normalized_reward(math.inf, 10.0, 50.0) == 0.0

    def test_degenerate_bounds(self):
        assert normalized_reward(10.0, 10.0, 10.0) == 1.0

    def test_clamped(self):
        assert 0.0 <= normalized_reward(70.0, 10.0, 50.0) <= 1.0


class TestStateEvaluator:
    def test_caches_by_state(self, setup):
        _, model, tree = setup
        evaluator = StateEvaluator(model, k_assignments=3, seed=0)
        first = evaluator.evaluate(tree)
        count = evaluator.stats.states_evaluated
        second = evaluator.evaluate(tree)
        assert first is second
        assert evaluator.stats.states_evaluated == count

    def test_tracks_incumbent_history(self, setup):
        _, model, tree = setup
        evaluator = StateEvaluator(model, seed=0)
        evaluator.evaluate(tree)
        assert evaluator.best is not None
        assert len(evaluator.history) == 1

    def test_finalize_requires_evaluation(self, setup):
        _, model, _ = setup
        with pytest.raises(RuntimeError):
            StateEvaluator(model).finalize()


class TestMCTS:
    def test_finds_valid_interface(self, setup):
        queries, model, tree = setup
        result = mcts_search(
            model, tree, config=MCTSConfig(time_budget_s=1.5, seed=1)
        )
        assert result.best.breakdown.feasible
        assert expresses_all(result.best_state, queries)
        assert result.strategy == "mcts"

    def test_deterministic_under_iteration_cap(self, setup):
        queries, model, tree = setup
        config = MCTSConfig(time_budget_s=60.0, max_iterations=5, seed=7)
        a = mcts_search(CostModel(queries, Screen.wide()), tree, config=config)
        b = mcts_search(CostModel(queries, Screen.wide()), tree, config=config)
        assert a.best_cost == b.best_cost
        assert a.stats.states_evaluated == b.stats.states_evaluated

    def test_history_costs_monotone(self, setup):
        _, model, tree = setup
        result = mcts_search(model, tree, config=MCTSConfig(time_budget_s=1.0, seed=2))
        costs = [c for _, c in result.history]
        assert costs == sorted(costs, reverse=True)

    def test_improves_over_initial_state(self, setup):
        queries, model, tree = setup
        from repro.cost import sampled_evaluation

        initial_cost = sampled_evaluation(model, tree, k=5).cost
        result = mcts_search(model, tree, config=MCTSConfig(time_budget_s=2.0, seed=3))
        assert result.best_cost <= initial_cost

    def test_respects_iteration_cap(self, setup):
        _, model, tree = setup
        result = mcts_search(
            model, tree, config=MCTSConfig(time_budget_s=60.0, max_iterations=2, seed=0)
        )
        assert result.stats.iterations <= 2

    def test_fanout_recorded(self, setup):
        _, model, tree = setup
        result = mcts_search(model, tree, config=MCTSConfig(time_budget_s=1.0, seed=0))
        assert result.stats.max_fanout >= 1


class TestBaselines:
    def test_random_search_valid(self, setup):
        queries, model, tree = setup
        result = random_search(model, tree, time_budget_s=1.0, seed=1)
        assert result.best.breakdown.feasible
        assert expresses_all(result.best_state, queries)
        assert result.strategy == "random"

    def test_greedy_descends(self, setup):
        queries, model, tree = setup
        from repro.cost import sampled_evaluation

        result = greedy_search(model, tree, time_budget_s=2.0, seed=1)
        assert result.best_cost <= sampled_evaluation(model, tree, k=5).cost

    def test_greedy_with_restarts(self, setup):
        _, model, tree = setup
        result = greedy_search(model, tree, time_budget_s=2.0, restarts=2, seed=1)
        assert result.best.breakdown.feasible

    def test_beam_search_valid(self, setup):
        queries, model, tree = setup
        result = beam_search(model, tree, beam_width=4, max_depth=6, time_budget_s=3.0)
        assert result.best.breakdown.feasible
        assert expresses_all(result.best_state, queries)

    def test_exhaustive_explores_dedicated_states(self, setup):
        _, model, tree = setup
        result = exhaustive_search(model, tree, max_states=60)
        assert result.stats.states_evaluated >= 10

    def test_exhaustive_is_lower_bound_for_others(self, setup):
        """On this tiny log exhaustive BFS finds the optimum within its
        horizon; MCTS with a decent budget should match it."""
        queries, model, tree = setup
        exact = exhaustive_search(
            CostModel(queries, Screen.wide()), tree, max_states=400
        )
        mcts = mcts_search(
            CostModel(queries, Screen.wide()),
            tree,
            config=MCTSConfig(time_budget_s=4.0, seed=5),
        )
        assert mcts.best_cost <= exact.best_cost * 1.1 + 1e-9
