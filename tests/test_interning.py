"""Interning invariants: hash-consing, fingerprints, and memo parity.

The contracts behind the hash-consed ingest path (ISSUE 5):

* parsing the same query twice yields *identical* interned subtrees,
* fingerprint equality ⇔ structural equality (property-style over the
  sdss / tpch / synthetic workloads),
* memoized ``anti_unify``/``graft``/``normalize``/``assignment_for``
  agree bit-for-bit with their unmemoized references,
* the serving dedup tiers and ingest counters observe repetition.
"""

import itertools

import pytest

from repro import memo
from repro.difftree import (
    anti_unify,
    extend_difftree,
    graft,
    initial_difftree,
    normalize,
    wrap_ast,
)
from repro.difftree.antiunify import anti_unify_reference
from repro.engine import Engine
from repro.core import GenerationConfig
from repro.registry import get_workload
from repro.serve import LogStream, log_key
from repro.sqlast import parse
import repro.workloads  # noqa: F401  (registers the built-in workloads)

FAST = GenerationConfig(time_budget_s=0.0, max_iterations=4, seed=0, final_cap=120)


def workload_asts():
    """A mixed bag of ASTs across the registered workload families."""
    asts = [parse(sql) for sql in get_workload("sdss")(10, seed=1)]
    asts += [parse(sql) for sql in get_workload("tpch")(10, seed=1)]
    asts += get_workload("synthetic.mixed_session")(10, seed=1)
    return asts


def structurally_equal(a, b):
    """Field-by-field comparison independent of interning/fingerprints."""
    return (
        a.label == b.label
        and a.value == b.value
        and len(a.children) == len(b.children)
        and all(structurally_equal(x, y) for x, y in zip(a.children, b.children))
    )


class TestNodeInterning:
    def test_same_query_parses_to_identical_subtrees(self):
        sql = "select top 10 objid from stars where u between 0 and 30"
        a = parse(sql)
        b = parse(sql)
        assert a is b
        # Every subtree is shared too, not just the root.
        for x, y in zip(a.walk(), b.walk()):
            assert x is y

    def test_equal_structure_from_different_texts_is_shared(self):
        # Same AST reached through different whitespace/case spellings.
        a = parse("select objid from stars where u < 5")
        b = parse("SELECT objid FROM stars WHERE u < 5")
        assert a is b

    def test_fingerprint_equality_iff_structural_equality(self):
        asts = workload_asts()
        for a, b in itertools.combinations(asts, 2):
            structural = structurally_equal(a, b)
            assert (a == b) == structural
            if structural:
                assert a is b
                assert a.fingerprint == b.fingerprint

    def test_wrapped_fingerprints_track_ast_identity(self):
        asts = workload_asts()
        keys = {}
        for ast in asts:
            keys.setdefault(wrap_ast(ast).canonical_key, ast)
        for key, ast in keys.items():
            # Distinct canonical keys => distinct interned ASTs.
            for other_key, other in keys.items():
                if key != other_key:
                    assert ast is not other


class TestDTNodeInterning:
    def test_wrap_ast_is_memoized(self):
        ast = parse("select objid from stars where u < 5")
        assert wrap_ast(ast) is wrap_ast(ast)

    def test_difftree_fingerprint_iff_canonical_key(self):
        asts = workload_asts()
        trees = [wrap_ast(ast) for ast in asts]
        trees.append(initial_difftree(asts[:5]))
        trees.append(initial_difftree(asts[5:9]))
        for a, b in itertools.combinations(trees, 2):
            assert (a == b) == (a.canonical_key == b.canonical_key)
            if a == b:
                assert a is b

    def test_rebuilt_difftree_is_identical_object(self):
        asts = workload_asts()[:6]
        assert initial_difftree(asts) is initial_difftree(list(asts))


class TestMemoParity:
    def test_anti_unify_matches_unmemoized_reference(self):
        asts = workload_asts()
        wrapped = [wrap_ast(ast) for ast in asts]
        for a, b in zip(wrapped, wrapped[1:]):
            reference = anti_unify_reference(a, b)
            assert anti_unify(a, b) is reference  # cold call
            assert anti_unify(a, b) is reference  # memo hit

    def test_graft_and_normalize_match_fast_path_off(self):
        asts = workload_asts()
        tree = initial_difftree(asts[:8])
        for ast in asts[8:]:
            fast = graft(tree, wrap_ast(ast))
            with memo.fast_paths(False):
                slow = graft(tree, wrap_ast(ast))
            assert fast.canonical_key == slow.canonical_key
            assert normalize(fast) is fast

    def test_extend_difftree_counts_dedup_skipped_appends(self):
        asts = workload_asts()[:6]
        tree = initial_difftree(asts)
        before = memo.INGEST.dedup_skipped_appends
        extended = extend_difftree(tree, asts)  # all already expressed
        assert extended is tree
        assert memo.INGEST.dedup_skipped_appends == before + len(asts)


class TestLogKey:
    def test_order_and_duplication_insensitive(self):
        asts = workload_asts()[:6]
        assert log_key(asts) == log_key(list(reversed(asts)))
        assert log_key(asts) == log_key(asts + asts)

    def test_different_logs_differ(self):
        asts = workload_asts()
        assert log_key(asts[:4]) != log_key(asts[:5])

    def test_empty_log_rejected(self):
        with pytest.raises(ValueError):
            log_key([])


class TestStreamDedupTier:
    def test_whitespace_duplicate_skips_reparse(self):
        stream = LogStream()
        stream.append("select objid from stars where u < 5")
        stream.append("select   objid from stars\n where u < 5")
        assert stream.parses == 1
        assert stream.parse_hits == 1
        assert stream.dedup_hits == 1
        assert stream.query_keys()[0] == stream.query_keys()[1]

    def test_quoted_strings_opt_out_of_normalization(self):
        stream = LogStream()
        stream.append("select objid from stars where name = 'a  b'")
        stream.append("select objid from stars where name = 'a b'")
        assert stream.parses == 2
        assert stream.dedup_hits == 0
        assert stream.query_keys()[0] != stream.query_keys()[1]

    def test_exact_duplicate_still_counts_as_parse_hit(self):
        stream = LogStream()
        stream.append("select objid from stars where u < 5")
        stream.append("select objid from stars where u < 5")
        assert stream.parses == 1
        assert stream.parse_hits == 1
        assert stream.dedup_hits == 0


class TestIngestReporting:
    def test_engine_reports_carry_ingest_counters(self):
        engine = Engine(config=FAST)
        session = engine.session("ingest-report")
        session.append(*get_workload("sdss")(4, seed=3))
        report = session.interface()
        assert report.ingest_stats  # sampled
        payload = report.to_dict()
        ingest = payload["provenance"]["ingest"]
        assert payload["schema_version"] == 4
        for key in (
            "parses",
            "node_intern_hits",
            "dtnode_intern_hits",
            "au_memo_hits",
            "dedup_skipped_appends",
            "stream_parses",
        ):
            assert key in ingest
            assert isinstance(ingest[key], int)

    def test_engine_ingest_stats_grow_with_repetition(self):
        engine = Engine(config=FAST)
        queries = get_workload("tpch")(4, seed=5)
        session = engine.session("rep")
        session.append(*queries)
        session.interface()
        before = engine.ingest_stats
        session.append(*queries)  # exact repeats: dedup tiers engage
        session.interface()
        after = engine.ingest_stats
        assert after["stream_parse_hits"] > before["stream_parse_hits"]
        assert after["dedup_skipped_appends"] >= before["dedup_skipped_appends"]
