"""Unit tests for each transformation rule and the rule engine."""

import random

import pytest

from repro.difftree import (
    ANY,
    EMPTY_NODE,
    MULTI,
    OPT,
    all_node,
    any_node,
    expresses_all,
    initial_difftree,
    normalize,
    opt_node,
    pretty,
    wrap_ast,
)
from repro.difftree.dtnodes import ALL
from repro.rules import (
    Any2AllRule,
    DistributeRule,
    LiftRule,
    Move,
    MultiMergeRule,
    OptionalRule,
    RuleEngine,
    UnOptionalRule,
    default_engine,
    forward_engine,
)
from repro.sqlast import parse


def moves_of(rule, tree):
    out = []
    for path, node in tree.walk_paths():
        out.extend(rule.moves_at(node, path))
    return out


class TestLift:
    def test_lifts_common_unary_head(self):
        tree = normalize(
            any_node(
                [
                    wrap_ast(parse("select a from t").child_by_label("Where") or parse("select a from t where x < 1").at((2,))),
                    wrap_ast(parse("select a from t where y < 2").at((2,))),
                ]
            )
        )
        rule = LiftRule()
        moves = moves_of(rule, tree)
        assert moves
        rewritten = normalize(rule.rewrite(tree, moves[0]))
        assert rewritten.kind == ALL
        assert rewritten.label == "Where"
        assert rewritten.children[0].kind == ANY

    def test_no_move_for_mixed_heads(self):
        tree = any_node(
            [all_node("ColExpr", "a"), all_node("NumExpr", 1)]
        )
        assert not moves_of(LiftRule(), tree)

    def test_no_move_for_multi_child_alternatives(self, fig1_tree):
        # Select alternatives have several children: Lift must not fire.
        assert not [m for m in moves_of(LiftRule(), fig1_tree) if m.path == ()]


class TestAny2All:
    def test_factors_figure1_root(self, fig1_tree, fig1_queries):
        rule = Any2AllRule()
        moves = [m for m in moves_of(rule, fig1_tree) if m.path == ()]
        assert len(moves) == 1
        rewritten = normalize(rule.rewrite(fig1_tree, moves[0]))
        assert rewritten.kind == ALL
        assert rewritten.label == "Select"
        # Where slot must have gained an EMPTY alternative (q3 lacks WHERE).
        kinds = [c.kind for c in rewritten.children]
        assert ANY in kinds

    def test_positional_fallback_for_repeated_keys(self):
        # Two And nodes with 2 same-key children each.
        a = wrap_ast(parse("select a from t where x < 1 and y < 2").at((2, 0)))
        b = wrap_ast(parse("select a from t where x < 3 and y < 4").at((2, 0)))
        tree = normalize(any_node([a, b]))
        rule = Any2AllRule()
        moves = moves_of(rule, tree)
        assert moves
        rewritten = normalize(rule.rewrite(tree, moves[0]))
        assert rewritten.label == "And"
        assert len(rewritten.children) == 2

    def test_skips_unalignable_different_arity(self):
        a = wrap_ast(parse("select a from t where x < 1 and y < 2").at((2, 0)))
        b = wrap_ast(
            parse("select a from t where x < 3 and y < 4 and z < 5").at((2, 0))
        )
        tree = normalize(any_node([a, b]))
        assert not moves_of(Any2AllRule(), tree)


class TestOptional:
    def test_converts_empty_alternative(self):
        tree = any_node([EMPTY_NODE, all_node("ColExpr", "a")])
        rule = OptionalRule()
        moves = moves_of(rule, tree)
        assert moves
        rewritten = normalize(rule.rewrite(tree, moves[0]))
        assert rewritten.kind == OPT

    def test_multiple_remaining_alternatives_stay_any(self):
        tree = any_node(
            [EMPTY_NODE, all_node("ColExpr", "a"), all_node("ColExpr", "b")]
        )
        rewritten = normalize(OptionalRule().rewrite(tree, Move("Optional", ())))
        assert rewritten.kind == OPT
        assert rewritten.children[0].kind == ANY

    def test_unoptional_inverse(self):
        tree = opt_node(all_node("ColExpr", "a"))
        rewritten = normalize(UnOptionalRule().rewrite(tree, Move("UnOptional", ())))
        assert rewritten.kind == ANY
        assert rewritten.children[0].kind == "EMPTY"

    def test_round_trip_is_identity(self):
        tree = any_node([EMPTY_NODE, all_node("ColExpr", "a")])
        opt = normalize(OptionalRule().rewrite(tree, Move("Optional", ())))
        back = normalize(UnOptionalRule().rewrite(opt, Move("UnOptional", ())))
        assert back == normalize(tree)


class TestMulti:
    def test_merges_adjacent_between_conjuncts(self):
        ast = parse(
            "select a from t where u between 0 and 30 and g between 0 and 30"
        ).at((2, 0))
        tree = wrap_ast(ast)
        rule = MultiMergeRule()
        moves = moves_of(rule, tree)
        assert moves
        rewritten = normalize(rule.rewrite(tree, moves[0]))
        multis = [n for n in rewritten.walk() if n.kind == MULTI]
        assert len(multis) == 1

    def test_does_not_merge_under_between(self):
        # The lo/hi bounds of a BETWEEN share an align key but must not merge.
        ast = parse("select a from t where u between 0 and 30").at((2, 0))
        tree = wrap_ast(ast)
        assert not moves_of(MultiMergeRule(), tree)

    def test_does_not_merge_choice_siblings(self, fig1_tree):
        engine = default_engine()
        factored = engine.apply(
            fig1_tree,
            [m for m in engine.moves(fig1_tree) if m.rule_name == "Any2All"][0],
        )
        assert not [
            m for m in moves_of(MultiMergeRule(), factored) if m.path == ()
        ]

    def test_merge_preserves_expressibility(self):
        queries = [
            parse("select a from t where u between 0 and 30 and g between 5 and 25"),
        ]
        tree = initial_difftree(queries)
        engine = default_engine()
        multi_moves = [m for m in engine.moves(tree) if m.rule_name == "Multi"]
        assert multi_moves
        after = engine.apply(tree, multi_moves[0])
        assert expresses_all(after, queries)


class TestDistribute:
    def test_inverse_of_any2all(self, fig1_tree):
        engine = default_engine()
        factored = engine.apply(
            fig1_tree,
            [m for m in engine.moves(fig1_tree) if m.rule_name == "Any2All"][0],
        )
        distribute_moves = [
            m for m in engine.moves(factored) if m.rule_name == "Distribute"
        ]
        assert distribute_moves
        # Distributing every slot eventually returns to whole-query ANY.
        state = factored
        for _ in range(10):
            moves = [m for m in engine.moves(state) if m.rule_name == "Distribute"]
            if not moves:
                break
            state = engine.apply(state, moves[0])
        assert state.kind == ANY

    def test_distribute_over_opt(self):
        tree = all_node(
            "Where", None, (opt_node(all_node("ColExpr", "a")),)
        )
        rule = DistributeRule()
        moves = moves_of(rule, tree)
        assert moves
        rewritten = normalize(rule.rewrite(tree, moves[0]))
        assert rewritten.kind == ANY
        assert len(rewritten.children) == 2


class TestEngine:
    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(ValueError):
            RuleEngine([LiftRule(), LiftRule()])

    def test_unknown_exclusion_rejected(self):
        with pytest.raises(ValueError):
            default_engine(exclude=("NotARule",))

    def test_exclusion_removes_rule(self):
        engine = default_engine(exclude=("Distribute",))
        assert "Distribute" not in {r.name for r in engine.rules}

    def test_neighbors_dedupe_states(self, fig1_tree):
        engine = default_engine()
        neighbors = engine.neighbors(fig1_tree)
        keys = [s.canonical_key for _, s in neighbors]
        assert len(keys) == len(set(keys))
        assert fig1_tree.canonical_key not in keys

    def test_fanout_matches_move_count(self, fig1_tree):
        engine = default_engine()
        assert engine.fanout(fig1_tree) == len(engine.moves(fig1_tree))

    def test_random_move_is_applicable(self, sdss_tree):
        import random

        engine = default_engine()
        rng = random.Random(0)
        for _ in range(10):
            move = engine.random_move(sdss_tree, rng)
            assert move is not None
            engine.apply(sdss_tree, move)  # must not raise

    def test_random_move_none_when_no_moves(self):
        import random

        engine = default_engine()
        tree = wrap_ast(parse("select a from t"))
        assert engine.random_move(tree, random.Random(0)) is None

    def test_sdss_fanout_reaches_paper_range_along_walks(self, sdss_tree):
        # Paper: "The fanout is as high as 50" on this log.  The root has
        # few moves; richer states along a walk reach the tens-to-hundreds.
        engine = default_engine()
        rng = random.Random(0)
        tree = sdss_tree
        max_fanout = 0
        for _ in range(40):
            moves = engine.moves(tree)
            max_fanout = max(max_fanout, len(moves))
            if not moves:
                break
            tree = engine.apply(tree, rng.choice(moves))
        assert max_fanout >= 50
