"""Shared fixtures: the paper's running examples and small models."""

from __future__ import annotations

import pytest

from repro.cost import CostModel
from repro.difftree import initial_difftree
from repro.layout import Screen
from repro.sqlast import parse
from repro.workloads import listing1_queries

#: The three queries of paper Figure 1.
FIGURE1_SQL = (
    "SELECT sales FROM sales WHERE cty = 'USA'",
    "SELECT costs FROM sales WHERE cty = 'EUR'",
    "SELECT costs FROM sales",
)


@pytest.fixture
def fig1_queries():
    return [parse(sql) for sql in FIGURE1_SQL]


@pytest.fixture
def fig1_tree(fig1_queries):
    return initial_difftree(fig1_queries)


@pytest.fixture
def fig1_model(fig1_queries):
    return CostModel(fig1_queries, Screen.wide())


@pytest.fixture
def sdss_queries():
    return listing1_queries()


@pytest.fixture
def sdss_tree(sdss_queries):
    return initial_difftree(sdss_queries)


@pytest.fixture
def sdss_model(sdss_queries):
    return CostModel(sdss_queries, Screen.wide())
