"""Tests for choice domains, the widget library, and tree derivation."""

import random

import pytest

from repro.difftree import (
    EMPTY_NODE,
    all_node,
    any_node,
    initial_difftree,
    multi_node,
    opt_node,
    wrap_ast,
)
from repro.rules import forward_engine
from repro.sqlast import parse
from repro.widgets import (
    BOOLEAN,
    COUNT,
    NUMERIC,
    RANGE,
    SIZE_CLASSES,
    STRING,
    SUBTREE,
    GreedyChooser,
    RandomChooser,
    ReplayChooser,
    candidates_for,
    decision_space,
    derive_widget_tree,
    domain_of,
    enumerate_widget_trees,
    widget_type,
)


def factored(queries):
    engine = forward_engine()
    tree = initial_difftree([parse(q) for q in queries])
    while True:
        moves = [m for m in engine.moves(tree) if m.rule_name != "Multi"]
        if not moves:
            return tree
        tree = engine.apply(tree, moves[0])


class TestDomains:
    def test_numeric_domain(self):
        node = any_node([all_node("Top", 10), all_node("Top", 100)])
        domain = domain_of(node)
        assert domain.kind == NUMERIC
        assert domain.numeric_values() == [10.0, 100.0]

    def test_string_domain(self):
        node = any_node([all_node("ColExpr", "a"), all_node("ColExpr", "b")])
        assert domain_of(node).kind == STRING

    def test_mixed_domain_is_subtree(self):
        node = any_node([all_node("ColExpr", "a"), all_node("NumExpr", 1)])
        assert domain_of(node).kind == SUBTREE

    def test_empty_option_sets_flag(self):
        node = any_node([EMPTY_NODE, all_node("ColExpr", "a"), all_node("ColExpr", "b")])
        domain = domain_of(node)
        assert domain.has_empty
        assert domain.labels[0] == "(none)"

    def test_range_domain_from_between_subtrees(self):
        a = wrap_ast(parse("select x from t where u between 0 and 30").at((2, 0)))
        b = wrap_ast(parse("select x from t where u between 5 and 25").at((2, 0)))
        domain = domain_of(any_node([a, b]))
        assert domain.kind == RANGE
        assert (0.0, 30.0) in domain.values

    def test_opt_domain_is_boolean(self):
        node = opt_node(all_node("ColExpr", "a"))
        assert domain_of(node).kind == BOOLEAN

    def test_multi_domain_is_count(self):
        node = multi_node(all_node("ColExpr", "a"))
        assert domain_of(node).kind == COUNT

    def test_complex_options_detected(self):
        inner = any_node([all_node("ColExpr", "a"), all_node("ColExpr", "b")])
        node = any_node(
            [all_node("Where", None, (inner,)), all_node("ColExpr", "c")]
        )
        assert domain_of(node).complex_options

    def test_non_choice_raises(self):
        with pytest.raises(ValueError):
            domain_of(all_node("ColExpr", "a"))

    def test_total_label_chars_uncapped(self):
        queries = [
            "select top 10 objid from stars where u between 0 and 30 and g between 0 and 30",
            "select top 100 objid from stars where u between 1 and 29 and g between 2 and 28",
        ]
        tree = initial_difftree([parse(q) for q in queries])
        domain = domain_of(tree)
        assert domain.total_label_chars > 2 * 50  # whole-SQL labels


class TestLibrary:
    def test_slider_requires_numeric(self):
        node = any_node([all_node("ColExpr", "a"), all_node("ColExpr", "b")])
        names = [w.name for w in candidates_for(domain_of(node))]
        assert "slider" not in names
        assert "dropdown" in names

    def test_slider_available_for_numeric(self):
        node = any_node([all_node("Top", 10), all_node("Top", 100), all_node("Top", 1000)])
        names = [w.name for w in candidates_for(domain_of(node))]
        assert "slider" in names

    def test_toggle_for_binary(self):
        node = any_node([all_node("ColExpr", "a"), all_node("ColExpr", "b")])
        names = [w.name for w in candidates_for(domain_of(node))]
        assert "toggle" in names

    def test_toggle_not_for_three_options(self):
        node = any_node(
            [all_node("ColExpr", "a"), all_node("ColExpr", "b"), all_node("ColExpr", "c")]
        )
        names = [w.name for w in candidates_for(domain_of(node))]
        assert "toggle" not in names

    def test_textbox_not_with_empty_option(self):
        node = any_node([EMPTY_NODE, all_node("NumExpr", 1), all_node("NumExpr", 2)])
        names = [w.name for w in candidates_for(domain_of(node))]
        assert "textbox" not in names

    def test_candidates_sorted_by_appropriateness(self):
        node = any_node([all_node("Top", 10), all_node("Top", 100), all_node("Top", 1000)])
        domain = domain_of(node)
        widgets = candidates_for(domain)
        costs = [w.appropriateness(domain) for w in widgets]
        assert costs == sorted(costs)

    def test_radio_penalized_beyond_five(self):
        small = domain_of(
            any_node([all_node("NumExpr", i) for i in range(3)])
        )
        big = domain_of(
            any_node([all_node("NumExpr", i) for i in range(10)])
        )
        radio = widget_type("radio")
        assert radio.appropriateness(big) > radio.appropriateness(small)

    def test_label_penalty_for_long_options(self):
        short = domain_of(
            any_node([all_node("ColExpr", "a"), all_node("ColExpr", "b")])
        )
        long = domain_of(
            any_node(
                [all_node("ColExpr", "a" * 60), all_node("ColExpr", "b" * 60)]
            )
        )
        buttons = widget_type("buttons")
        assert buttons.appropriateness(long) > buttons.appropriateness(short) + 2

    def test_size_classes_scale_size_and_effort(self):
        node = any_node([all_node("ColExpr", "a"), all_node("ColExpr", "b")])
        domain = domain_of(node)
        dropdown = widget_type("dropdown")
        w_s, _ = dropdown.size(domain, "S")
        w_l, _ = dropdown.size(domain, "L")
        assert w_s < w_l
        assert dropdown.effort(domain, "S") > dropdown.effort(domain, "L")

    def test_unknown_widget_raises(self):
        with pytest.raises(KeyError):
            widget_type("flux-capacitor")


class TestDerivation:
    def test_concrete_tree_yields_static_label(self):
        tree = wrap_ast(parse("select a from t"))
        root = derive_widget_tree(tree, GreedyChooser())
        assert root.widget == "label"

    def test_figure1_factored_derivation(self):
        tree = factored(
            [
                "SELECT sales FROM sales WHERE cty = 'USA'",
                "SELECT costs FROM sales WHERE cty = 'EUR'",
                "SELECT costs FROM sales",
            ]
        )
        root = derive_widget_tree(tree, GreedyChooser())
        controlled = [n for n in root.walk() if n.choice_path is not None]
        assert len(controlled) == 3  # projection, where-toggle, literal

    def test_opt_groups_toggle_with_body(self):
        tree = factored(
            [
                "SELECT a FROM t WHERE cty = 'USA'",
                "SELECT a FROM t WHERE cty = 'EUR'",
                "SELECT a FROM t",
            ]
        )
        root = derive_widget_tree(tree, GreedyChooser())
        # Find the layout box holding the toggle + inner widget (Fig 2b).
        boxes = [
            n
            for n in root.walk()
            if n.widget in ("vertical", "horizontal") and len(n.children) >= 2
        ]
        assert any(
            any(c.domain is not None and c.domain.kind == BOOLEAN for c in box.children)
            for box in boxes
        )

    def test_multi_derives_adder(self):
        tree = initial_difftree(
            [parse("select a from t where u between 0 and 30 and g between 0 and 30")]
        )
        from repro.rules import default_engine

        engine = default_engine()
        move = [m for m in engine.moves(tree) if m.rule_name == "Multi"][0]
        merged = engine.apply(tree, move)
        root = derive_widget_tree(merged, GreedyChooser())
        assert any(n.widget == "adder" for n in root.walk())

    def test_complex_any_derives_tabs(self):
        # Alternatives with nested choices force a tabs widget.
        tree = initial_difftree(
            [
                parse("select a from t where x < 1"),
                parse("select a from t where x < 2"),
                parse("select b from s order by b"),
            ]
        )
        from repro.rules import default_engine

        engine = default_engine()
        # Factor only the first two queries' difference, keeping the root ANY.
        root = derive_widget_tree(tree, GreedyChooser())
        assert root.widget in ("buttons", "radio", "dropdown", "tabs")

    def test_random_chooser_is_seed_deterministic(self, sdss_tree):
        a = derive_widget_tree(sdss_tree, RandomChooser(random.Random(5)))
        b = derive_widget_tree(sdss_tree, RandomChooser(random.Random(5)))
        assert [n.widget for n in a.walk()] == [n.widget for n in b.walk()]

    def test_replay_chooser_overrides(self):
        tree = factored(
            ["SELECT sales FROM sales", "SELECT costs FROM sales"]
        )
        space = decision_space(tree)
        path, options = next(iter(space.widget_options.items()))
        assert len(options) >= 2
        forced = options[1]
        root = derive_widget_tree(tree, ReplayChooser({path: (forced, "S")}))
        node = [n for n in root.walk() if n.choice_path == path][0]
        assert node.widget == forced
        assert node.size_class == "S"

    def test_replay_ignores_invalid_widget(self):
        tree = factored(["SELECT sales FROM sales", "SELECT costs FROM sales"])
        space = decision_space(tree)
        path = next(iter(space.widget_options))
        root = derive_widget_tree(tree, ReplayChooser({path: ("slider", "M")}))
        node = [n for n in root.walk() if n.choice_path == path][0]
        assert node.widget != "slider"  # string domain: slider rejected

    def test_enumeration_covers_space_and_caps(self):
        tree = factored(["SELECT sales FROM sales", "SELECT costs FROM sales"])
        space = decision_space(tree)
        all_trees = list(enumerate_widget_trees(tree, cap=1000))
        assert 1 <= len(all_trees) <= 1000
        assert len(all_trees) == min(space.num_assignments, 1000)
        widgets_seen = {
            n.widget for t in all_trees for n in t.walk() if n.choice_path is not None
        }
        assert len(widgets_seen) >= 2

    def test_every_choice_node_gets_a_widget(self, sdss_tree):
        from repro.rules import forward_engine as fwd

        engine = fwd()
        tree = sdss_tree
        while True:
            moves = [m for m in engine.moves(tree) if m.rule_name != "Multi"]
            if not moves:
                break
            tree = engine.apply(tree, moves[0])
        root = derive_widget_tree(tree, GreedyChooser())
        widget_paths = {n.choice_path for n in root.walk() if n.choice_path is not None}
        choice_paths = {p for p, _ in tree.choice_nodes()}
        # Choices nested under a MULTI template are handled by the adder.
        top_level = {
            p
            for p in choice_paths
            if not any(
                tree.at(p[:k]).kind == "MULTI" for k in range(1, len(p))
            )
        }
        assert top_level <= widget_paths
