"""Co-occurrence warnings: the paper's Ongoing-Work extension in action.

Generated interfaces intentionally generalize the input log — the
difftree expresses combinations of widget choices no log query ever
used.  Most are useful; some "may not make semantic sense" (paper,
Ongoing Work).  This example fits the co-occurrence model on the SDSS
log and shows how an interface can warn when the user steers into
never-witnessed territory.

Run:  python examples/cooccurrence_warnings.py
"""

from repro import GenerationConfig, Screen, generate_interface
from repro.cooccur import CooccurrenceModel
from repro.difftree import assignment_for, enumerate_queries
from repro.sqlast import to_sql
from repro.workloads import listing1_queries, listing1_sql


def main() -> None:
    result = generate_interface(
        listing1_sql(6, 8),
        screen=Screen.wide(),
        config=GenerationConfig(time_budget_s=4.0, seed=11),
    )
    tree = result.difftree
    queries = listing1_queries(6, 8)
    model = CooccurrenceModel.from_log(tree, queries)

    print("Interface generated from queries 6-8 of the SDSS log:")
    print(result.ascii_art)
    print(f"\nFitted co-occurrence model over {model.num_queries} queries.")

    print("\nScanning expressible queries for unlikely widget combinations:")
    likely = unlikely = 0
    examples = []
    for query in enumerate_queries(tree, limit=60):
        assignment = assignment_for(tree, query)
        if assignment is None:
            continue
        if model.is_likely(assignment):
            likely += 1
        else:
            unlikely += 1
            if len(examples) < 5:
                examples.append(query)
    print(f"  likely (witnessed combos):   {likely}")
    print(f"  unlikely (never witnessed):  {unlikely}")
    print("\nExamples the interface would flag with a warning:")
    for query in examples:
        print(f"  ⚠ {to_sql(query)}")
    print(
        "\nThe log queries themselves are always likely:",
        all(model.is_likely(assignment_for(tree, q)) for q in queries),
    )


if __name__ == "__main__":
    main()
