"""Log patterns: how different analysis-session shapes change the interface.

The paper's premise is that "the structural differences between the
queries are representative of the types of changes the user wishes to
express interactively".  This example generates four characteristic
session shapes with the synthetic workload generators and shows how the
generated interface adapts:

* value drift        → a slider / numeric chooser
* clause toggling    → toggles / checkboxes guarding optional clauses
* growing predicates → an adder (MULTI) widget
* mixed session      → a composite interface

It also compares search strategies head-to-head on the mixed session.

Run:  python examples/log_patterns.py
"""

from collections import Counter

from repro import GenerationConfig, Screen, generate_interface
from repro.sqlast import to_sql
from repro.workloads import (
    clause_toggle_log,
    mixed_session_log,
    predicate_add_log,
    value_drift_log,
)

BUDGET_S = 3.0


def show(name: str, queries, seed: int = 5) -> None:
    print(f"\n=== {name} ===")
    for query in queries[:4]:
        print(f"  {to_sql(query)}")
    if len(queries) > 4:
        print(f"  ... ({len(queries) - 4} more)")
    result = generate_interface(
        queries,
        screen=Screen.wide(),
        config=GenerationConfig(time_budget_s=BUDGET_S, seed=seed),
    )
    mix = Counter(
        n.widget for n in result.widget_tree.walk() if n.choice_path is not None
    )
    print(f"  -> cost {result.cost:.2f}, widgets {dict(mix)}")
    print("\n".join("  " + line for line in result.ascii_art.splitlines()))


def compare_strategies(queries) -> None:
    print("\n=== Strategy comparison on the mixed session ===")
    print(f"{'strategy':<12} {'cost':>8} {'states':>8}")
    for strategy in ("mcts", "random", "greedy", "beam"):
        result = generate_interface(
            queries,
            config=GenerationConfig(
                strategy=strategy, time_budget_s=BUDGET_S, seed=3
            ),
        )
        print(
            f"{strategy:<12} {result.cost:>8.2f} "
            f"{result.search.stats.states_evaluated:>8d}"
        )


def main() -> None:
    show("Value drift (literal sweeps)", value_drift_log(num_queries=7, seed=2))
    show("Clause toggling", clause_toggle_log(num_queries=8, seed=4))
    show("Growing predicate chains", predicate_add_log(num_queries=6, seed=1))
    mixed = mixed_session_log(num_queries=10, seed=8)
    show("Mixed session", mixed)
    compare_strategies(mixed)


if __name__ == "__main__":
    main()
