"""Quickstart: generate an interface for a tiny query log and use it.

This is the paper's Figure 1→Figure 2 pipeline in ~30 lines, through
the session-oriented Engine API: three queries from an analysis session
go in, an interactive interface comes out (as a structured
`GenerationReport`), and we then drive that interface programmatically —
each widget interaction rewrites the current query, re-executes it, and
refreshes the (ASCII) visualization.

Run:  PYTHONPATH=src python examples/quickstart.py
"""

from repro import Engine, GenerationConfig, Screen
from repro.database import Database, Table
from repro.vis import render_chart

# The analysis session: the paper's Figure 1 queries.
LOG = [
    "SELECT sales FROM sales WHERE cty = 'USA'",
    "SELECT costs FROM sales WHERE cty = 'EUR'",
    "SELECT costs FROM sales",
]


def main() -> None:
    print("Input query log:")
    for i, sql in enumerate(LOG, 1):
        print(f"  q{i}: {sql}")

    engine = Engine(
        screen=Screen.wide(),
        config=GenerationConfig(time_budget_s=3.0, seed=7),
    )
    report = engine.generate(LOG)
    print(f"\nGenerated interface (cost {report.cost:.2f}, source {report.source!r}):\n")
    print(report.ascii_art)

    # The same log again is a cache hit — no second search.
    again = engine.generate(LOG)
    assert again.source == "cache" and again.result is report.result

    # Attach a database and interact with the interface.
    db = Database(
        [
            Table(
                "sales",
                {
                    "cty": ["USA", "EUR", "USA", "APAC"],
                    "sales": [120, 80, 45, 60],
                    "costs": [70, 50, 30, 20],
                },
            )
        ]
    )
    session = report.result.session(db)
    print(f"\nCurrent query: {session.current_sql}")
    print(render_chart(session.chart(), session.run()))

    # Flip the WHERE toggle (the paper's q2 -> q3 step).
    toggle = next(
        w for w in session.widgets() if w.domain and w.domain.kind == "boolean"
    )
    session.toggle(toggle.choice_path)
    print(f"\nAfter toggling WHERE: {session.current_sql}")
    print(render_chart(session.chart(), session.run()))


if __name__ == "__main__":
    main()
