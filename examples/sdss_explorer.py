"""SDSS explorer: the paper's headline experiment, end to end.

Reproduces the Figure 6 workflow: take the 10-query Sloan Digital Sky
Survey log (Listing 1), generate interfaces for a wide and a narrow
screen, compare the widget selections (the paper's 6(a) vs 6(b)
contrast), then open the wide interface on a synthetic SDSS catalog and
replay the entire log through the generated widgets.

Run:  python examples/sdss_explorer.py
"""

from collections import Counter

from repro import GenerationConfig, Screen, generate_interface
from repro.datagen import make_sdss_database
from repro.vis import render_chart
from repro.workloads import listing1_queries, listing1_sql

BUDGET_S = 8.0


def widget_mix(result) -> dict:
    return dict(
        Counter(
            n.widget for n in result.widget_tree.walk() if n.choice_path is not None
        )
    )


def main() -> None:
    print("SDSS query log (Listing 1):")
    for i, sql in enumerate(listing1_sql(), 1):
        print(f"  {i:2d}. {sql[:76]}{'...' if len(sql) > 76 else ''}")

    wide = generate_interface(
        listing1_sql(),
        screen=Screen.wide(),
        config=GenerationConfig(time_budget_s=BUDGET_S, seed=11),
    )
    narrow = generate_interface(
        listing1_sql(),
        screen=Screen.narrow(),
        config=GenerationConfig(time_budget_s=BUDGET_S, seed=11),
    )

    print(f"\n--- Wide screen (Fig 6a): cost {wide.cost:.2f}, "
          f"{wide.best.breakdown.width:.0f}x{wide.best.breakdown.height:.0f}px, "
          f"widgets {widget_mix(wide)}")
    print(wide.ascii_art)
    print(f"\n--- Narrow screen (Fig 6b): cost {narrow.cost:.2f}, "
          f"{narrow.best.breakdown.width:.0f}x{narrow.best.breakdown.height:.0f}px, "
          f"widgets {widget_mix(narrow)}")
    print(narrow.ascii_art)

    # Drive the wide interface over a synthetic SDSS catalog.
    db = make_sdss_database(rows_per_table=400, seed=42)
    session = wide.session(db)
    print("\nReplaying the full log through the generated interface:")
    for i, query in enumerate(listing1_queries(), 1):
        session.load_query(query)
        result = session.run()
        print(f"  q{i:2d}: {result.num_rows:4d} rows  <- {session.current_sql[:64]}...")

    # Show a visualization for the last query.
    print("\nVisualization for the current query:")
    print(render_chart(session.chart(), session.run()))

    # Export the interface as a self-contained HTML page.
    html_path = "sdss_interface.html"
    with open(html_path, "w", encoding="utf-8") as f:
        f.write(wide.html(title="SDSS explorer (generated)"))
    print(f"\nWrote {html_path}")


if __name__ == "__main__":
    main()
