"""Serving a growing query log with incremental regeneration.

Simulates an analyst session streaming queries in, through the Engine
API: after each batch of appends `session.interface()` regenerates the
interface, warm-starting from the previous run instead of searching
from scratch, and serving exact repeats straight from the cache — the
report's provenance says which happened.

Run:  PYTHONPATH=src python examples/streaming_service.py
"""

from __future__ import annotations

from repro import Engine, GenerationConfig

CHUNK = 5


def main() -> None:
    engine = Engine(config=GenerationConfig(time_budget_s=1.0, seed=0))
    log = engine.workload("sdss", 20, seed=0)

    session = engine.session("analyst-42")
    report = None
    for start in range(0, len(log), CHUNK):
        session.append(*log[start : start + CHUNK])
        report = session.interface()
        stats = report.search.stats
        print(
            f"log={session.log_length:>2}  cost={report.cost:7.2f}  "
            f"{report.timings['total_s']:5.2f}s  source={report.source}  "
            f"warm-seeds={stats.warm_states_seeded}  "
            f"iterations={stats.iterations}"
        )

    # An unchanged log is a pure cache hit: no search at all.
    repeat = session.interface()
    print(
        f"repeat: source={repeat.source} in {repeat.timings['total_s'] * 1000:.1f} ms "
        f"(same interface: {repeat.result is report.result}, "
        f"cache stats: {engine.cache_stats})"
    )

    print(f"\nHistory: {len(session.history())} reports for this session")
    print("\nFinal interface:\n")
    print(report.ascii_art)


if __name__ == "__main__":
    main()
