"""Serving a growing query log with incremental regeneration.

Simulates an analyst session streaming queries in: after each batch of
appends the service regenerates the interface, warm-starting from the
previous run instead of searching from scratch, and serving exact
repeats straight from the cache.

Run:  PYTHONPATH=src python examples/streaming_service.py
"""

from __future__ import annotations

import time

from repro import GenerationConfig, IncrementalGenerator
from repro.workloads import sdss_session_sql

CHUNK = 5
LOG = sdss_session_sql(20, seed=0)


def main() -> None:
    service = IncrementalGenerator(
        config=GenerationConfig(time_budget_s=1.0, seed=0)
    )

    result = None
    for start in range(0, len(LOG), CHUNK):
        batch = LOG[start : start + CHUNK]
        service.append(*batch)
        t0 = time.perf_counter()
        result = service.generate()
        elapsed = time.perf_counter() - t0
        stats = result.search.stats
        print(
            f"log={service.log_length():>2}  cost={result.cost:7.2f}  "
            f"{elapsed:5.2f}s  warm-seeds={stats.warm_states_seeded}  "
            f"iterations={stats.iterations}"
        )

    # An unchanged log is a pure cache hit: no search at all.
    t0 = time.perf_counter()
    repeat = service.generate()
    print(
        f"repeat: served from cache in {(time.perf_counter() - t0) * 1000:.1f} ms "
        f"(same object: {repeat is result}, "
        f"cache stats: {service.cache.stats})"
    )

    print("\nFinal interface:\n")
    print(result.ascii_art)


if __name__ == "__main__":
    main()
