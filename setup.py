from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.2.0",
    description=(
        "Reproduction of 'Monte Carlo Tree Search for Generating "
        "Interactive Data Analysis Interfaces' (Chen & Wu, 2020)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
