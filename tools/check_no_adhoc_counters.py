#!/usr/bin/env python
"""Lint rule: no new ad-hoc module-level counters outside ``repro.obs``.

PR 6 unified the stack's telemetry behind :mod:`repro.obs` — counters,
gauges, histograms, and absorbed snapshot sources all live in (or are
registered with) the process-wide registry.  This checker keeps the
unification from eroding: new instrumentation must go through
``repro.obs`` (a native metric, or a ``register_source`` snapshot of a
per-instance stats object), not reinvent module-level tallies.

Two patterns are flagged in ``src/repro`` outside ``repro/obs/``:

1. **Mutated module globals** — a function declaring ``global NAME``
   and augmenting it (``NAME += 1``).  Plain reassignment (mode
   switches like ``repro.memo.set_fast_paths``) is fine; accumulation
   is a counter.
2. **Module-level counter singletons** — a module-scope assignment
   instantiating a class whose name ends in ``Counter``/``Counters``
   / ``Stats``.  Per-instance stats dataclasses (``CacheStats`` on a
   cache, ``KernelStats`` on a model) are fine — they are absorbed via
   registry sources; a fresh *module-level* singleton is a parallel
   telemetry channel.

The allowlist pins the grandfathered singleton (``repro.memo.INGEST``,
itself registered as the ``ingest.*`` source).  Exit code 1 on any new
finding — wired into the CI lint job.
"""

from __future__ import annotations

import ast
import pathlib
import sys
from typing import List, Tuple

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: (path relative to src/, global name) pairs allowed to remain.
ALLOWLIST = {
    ("repro/memo.py", "INGEST"),
    # Registered with repro.obs via register_source("difftree.columnar", ...);
    # kept as a plain-slots singleton because the encode/extend hot loops
    # bump it per node.
    ("repro/difftree/columnar.py", "STATS"),
    # Registered via register_source("serve.cluster", ...); plain-field
    # singleton because the worker emit loop and the front's dispatch/
    # reap paths bump it per message.
    ("repro/serve/cluster.py", "STATS"),
    # Registered via register_source("search.carry", ...); plain-field
    # singleton because harvest/rebase/retention paths bump it per node.
    ("repro/search/carry.py", "STATS"),
    # Registered via register_source("cost.kernel.batch", ...); plain-field
    # singleton because set_population/apply_delta bump it per call.
    ("repro/cost/batch.py", "STATS"),
}

#: Class-name suffixes that mark a counter-ish singleton.
COUNTER_SUFFIXES = ("Counter", "Counters", "Stats")


def _mutated_globals(tree: ast.AST) -> List[Tuple[str, int]]:
    """(name, line) of module globals augmented inside functions."""
    found = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        declared = set()
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Global):
                declared.update(stmt.names)
        if not declared:
            continue
        for stmt in ast.walk(node):
            if (
                isinstance(stmt, ast.AugAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id in declared
            ):
                found.append((stmt.target.id, stmt.lineno))
    return found


def _counter_singletons(tree: ast.AST) -> List[Tuple[str, int]]:
    """(name, line) of module-level ``NAME = SomethingCounter(...)``."""
    found = []
    for stmt in tree.body if isinstance(tree, ast.Module) else []:
        if not isinstance(stmt, ast.Assign) or not isinstance(stmt.value, ast.Call):
            continue
        func = stmt.value.func
        cls = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        if not cls.endswith(COUNTER_SUFFIXES):
            continue
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                found.append((target.id, stmt.lineno))
    return found


def main() -> int:
    failures = []
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC.parent).as_posix()
        if rel.startswith("repro/obs/"):
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=rel)
        for name, line in _mutated_globals(tree) + _counter_singletons(tree):
            if (rel, name) in ALLOWLIST:
                continue
            failures.append(f"{rel}:{line}: ad-hoc module-level counter {name!r}")
    if failures:
        print(
            "New module-level counters must go through repro.obs "
            "(REGISTRY.counter/histogram or register_source):",
            file=sys.stderr,
        )
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"check_no_adhoc_counters: OK ({SRC})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
